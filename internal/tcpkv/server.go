// Package tcpkv runs the eFactory protocol over real TCP, giving the
// library a deployable network mode (cmd/efactory-server and
// cmd/efactory-cli). It reuses the storage substrate — the nvm device
// model, the on-NVM object layout and hash table, the wire protocol and
// the CRC — and emulates RDMA semantics faithfully:
//
//   - One-sided READ/WRITE frames are served by a dedicated engine
//     goroutine per connection that touches the device directly, never the
//     request loop — like an RNIC bypassing the host CPU. Racing reads can
//     observe torn objects, exactly as over real RDMA; the durability flag
//     and CRC machinery handle it.
//   - PUT acknowledges before durability (client-active scheme with
//     asynchronous durability); a background goroutine verifies and
//     persists, setting the durability flag.
//   - GET uses the hybrid read scheme: one-sided entry + object reads,
//     falling back to an RPC when the fetched object is not durable.
//   - Log cleaning (§4.4) runs the two-stage compress/merge protocol over
//     two data pools, triggered by a free-space threshold.
//
// Unlike the simulation transport, clients are not push-notified when
// cleaning starts. They do not need to be for safety: a stale one-sided
// read can only land in (a) the old pool, whose objects stay intact until
// the NEXT cleaning recycles that region — at which point the zeroed bytes
// fail the Magic/durability checks and the client falls back to the RPC
// path — or (b) a reclaimed entry, which also falls back. Responses still
// carry wire.NoteCleaning so RPC-active clients can bias toward the server
// path during cleaning.
//
// Backed by an nvm.FileBacked device the store survives process restarts:
// on startup the server recovers by walking version lists and restoring
// the newest intact version of every key, as efactory.Recover does in
// simulation mode.
package tcpkv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"efactory/internal/crc"
	"efactory/internal/kv"
	"efactory/internal/nvm"
	"efactory/internal/wire"
)

// Channel bytes sent as the first byte of each TCP connection.
const (
	chanRPC      = 0x01
	chanOneSided = 0x02
)

// One-sided opcodes.
const (
	opRead  = 0x01
	opWrite = 0x02
)

// Region keys: the hash table plus one rkey per data pool. Clients address
// pool i as rkeyPoolBase + i, matching the entry mark bit.
const (
	rkeyTable    = 1
	rkeyPoolBase = 2
)

// Config sizes a TCP server.
type Config struct {
	Buckets  int
	PoolSize int // capacity of EACH of the two data pools
	// VerifyTimeout bounds how long an incomplete write may stay pending
	// before being invalidated.
	VerifyTimeout time.Duration
	// BGInterval is the background verifier's idle poll period.
	BGInterval time.Duration
	// CleanThreshold triggers log cleaning when the working pool's free
	// fraction drops below it. Zero disables automatic cleaning.
	CleanThreshold float64
}

// DefaultConfig returns a small, usable configuration.
func DefaultConfig() Config {
	return Config{
		Buckets:        16384,
		PoolSize:       64 << 20,
		VerifyTimeout:  50 * time.Millisecond,
		BGInterval:     200 * time.Microsecond,
		CleanThreshold: 0.15,
	}
}

// DeviceSize returns the device capacity cfg requires.
func (c Config) DeviceSize() int {
	tb := (kv.TableBytes(c.Buckets) + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	return tb + 2*c.PoolSize
}

// Stats counts server events (updated under mu).
type Stats struct {
	Puts          int
	Gets          int
	Dels          int
	BGVerified    int
	BGInvalidated int
	Recovered     int
	RolledBack    int
	Cleanings     int
	CleanMoved    int
	CleanDropped  int
}

// Server is a TCP-mode eFactory server.
type Server struct {
	cfg   Config
	dev   nvm.Device
	table *kv.Table
	pools [2]*kv.Pool

	mu       sync.Mutex // guards all metadata below
	cur      int        // current working pool
	mark     int        // mark bit entries carry outside cleaning (== cur)
	cleaning bool
	merging  bool
	seq      uint64
	bgPos    [2]int
	stats    Stats

	closing   chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	ln        net.Listener
	connMu    sync.Mutex
	conns     map[net.Conn]struct{}
}

// NewServer builds a server over dev, recovering any existing state (a
// reopened file-backed device). The caller owns dev's lifetime.
func NewServer(dev nvm.Device, cfg Config) (*Server, error) {
	if cfg.Buckets <= 0 || cfg.PoolSize <= 0 {
		return nil, errors.New("tcpkv: invalid config")
	}
	if cfg.VerifyTimeout == 0 {
		cfg.VerifyTimeout = DefaultConfig().VerifyTimeout
	}
	if cfg.BGInterval == 0 {
		cfg.BGInterval = DefaultConfig().BGInterval
	}
	if dev.Size() < cfg.DeviceSize() {
		return nil, fmt.Errorf("tcpkv: device %d B smaller than config needs (%d B)", dev.Size(), cfg.DeviceSize())
	}
	tb := (kv.TableBytes(cfg.Buckets) + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	s := &Server{
		cfg:     cfg,
		dev:     dev,
		table:   kv.NewTable(dev, 0, cfg.Buckets),
		closing: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	for i := 0; i < 2; i++ {
		s.pools[i] = kv.NewPool(dev, tb+i*cfg.PoolSize, cfg.PoolSize)
	}
	s.recover()
	s.wg.Add(1)
	go s.background()
	return s, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Cleaning reports whether log cleaning is in progress.
func (s *Server) Cleaning() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cleaning
}

// recover rebuilds consistent state from the device (see package comment):
// resolve each entry to its newest intact version via its own mark bit and
// version list, then re-materialize everything into a fresh pool 0.
func (s *Server) recover() {
	maxSeq := uint64(0)
	empty := true
	for pi := 0; pi < 2; pi++ {
		head := 0
		s.pools[pi].ScanPersisted(func(off uint64, h kv.Header) bool {
			head = int(off) + kv.ObjectSize(h.KLen, h.VLen)
			if h.Seq > maxSeq {
				maxSeq = h.Seq
			}
			return true
		})
		s.pools[pi].SetHead(head)
		if head > 0 {
			empty = false
		}
	}
	if empty {
		return // fresh device
	}
	type survivor struct {
		key []byte
		val []byte
		h   kv.Header
	}
	var live []survivor
	s.table.RangeAll(func(i int, e kv.Entry) bool {
		if e.Tombstone() {
			return true
		}
		slot := e.Mark()
		loc := e.Loc[slot]
		if loc == 0 {
			slot = 1 - slot
			loc = e.Loc[slot]
		}
		if loc == 0 {
			return true
		}
		pi := slot
		off, totalLen, _ := kv.UnpackLoc(loc)
		rolled := false
		for {
			if int(off)+totalLen > s.pools[pi].Cap() {
				return true
			}
			h := s.pools[pi].Header(off)
			if h.Magic == kv.Magic && h.Valid() && h.KLen > 0 &&
				kv.ObjectSize(h.KLen, h.VLen) == totalLen {
				key := make([]byte, h.KLen)
				base := s.pools[pi].Base() + int(off)
				s.dev.Read(base+kv.KeyOffset(), key)
				val := s.pools[pi].ReadValue(off, h.KLen, h.VLen)
				if crc.Checksum(val) == h.CRC {
					live = append(live, survivor{key: key, val: val, h: h})
					s.stats.Recovered++
					if rolled {
						s.stats.RolledBack++
					}
					return true
				}
			}
			rolled = true
			if h.Magic != kv.Magic {
				return true
			}
			var ok bool
			pi, off, totalLen, ok = kv.UnpackVPtr(h.PrePtr)
			if !ok {
				return true
			}
		}
	})
	// Re-materialize into a canonical state.
	tb := (kv.TableBytes(s.cfg.Buckets) + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	s.dev.Zero(0, tb)
	for pi := 0; pi < 2; pi++ {
		s.dev.Zero(s.pools[pi].Base(), s.cfg.PoolSize)
		s.pools[pi] = kv.NewPool(s.dev, s.pools[pi].Base(), s.cfg.PoolSize)
	}
	for _, sv := range live {
		h := kv.Header{
			PrePtr:    kv.NilPtr,
			NextPtr:   kv.NilPtr,
			Seq:       sv.h.Seq,
			CreatedAt: sv.h.CreatedAt,
			CRC:       sv.h.CRC,
			VLen:      sv.h.VLen,
			Flags:     kv.FlagValid | kv.FlagDurable,
		}
		off, ok := s.pools[0].AppendObject(&h, sv.key)
		if !ok {
			panic("tcpkv: recovery pool overflow")
		}
		s.pools[0].WriteValue(off, len(sv.key), sv.val)
		s.pools[0].FlushObject(off, len(sv.key), sv.h.VLen)
		idx, _, ok := s.table.FindSlot(kv.HashKey(sv.key))
		if !ok {
			panic("tcpkv: recovery table overflow")
		}
		s.table.Publish(idx, kv.PackLoc(off, kv.ObjectSize(len(sv.key), sv.h.VLen)))
	}
	s.bgPos[0] = s.pools[0].Used()
	s.seq = maxSeq
	s.pools[0].SetSeq(maxSeq)
	s.pools[1].SetSeq(maxSeq)
	s.dev.Drain()
}

// Serve accepts and serves connections until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closing:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops the server, disconnects every client, and waits for its
// goroutines. Close is idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closing)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	return nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	var kind [1]byte
	if _, err := io.ReadFull(conn, kind[:]); err != nil {
		return
	}
	switch kind[0] {
	case chanRPC:
		s.serveRPC(conn)
	case chanOneSided:
		s.serveOneSided(conn)
	}
}

// writeFrame sends one length-prefixed frame with a single Write so the
// header and payload share a TCP segment.
func writeFrame(conn net.Conn, payload []byte) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := conn.Write(buf)
	return err
}

// readFrame receives one length-prefixed frame.
func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("tcpkv: oversized frame (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// serveRPC is the two-sided channel: the request-processing loop.
func (s *Server) serveRPC(conn net.Conn) {
	for {
		raw, err := readFrame(conn)
		if err != nil {
			return
		}
		m, err := wire.Decode(raw)
		if err != nil {
			return
		}
		resp := s.handle(m)
		if s.Cleaning() {
			resp.Note |= wire.NoteCleaning
		}
		if err := writeFrame(conn, resp.Encode()); err != nil {
			return
		}
	}
}

// serveOneSided is the RNIC-emulation channel: READ/WRITE frames touch the
// device directly, bypassing the request loop.
func (s *Server) serveOneSided(conn net.Conn) {
	for {
		raw, err := readFrame(conn)
		if err != nil {
			return
		}
		if len(raw) < 17 {
			return
		}
		op := raw[0]
		rkey := binary.BigEndian.Uint32(raw[1:])
		off := int(binary.BigEndian.Uint64(raw[5:]))
		length := int(binary.BigEndian.Uint32(raw[13:]))
		base, size, ok := s.region(rkey)
		if !ok || off < 0 || length < 0 || off+length > size {
			writeFrame(conn, []byte{0}) // NAK
			continue
		}
		switch op {
		case opRead:
			out := make([]byte, 1+length)
			out[0] = 1
			s.dev.Read(base+off, out[1:])
			if err := writeFrame(conn, out); err != nil {
				return
			}
		case opWrite:
			data := raw[17:]
			if len(data) != length {
				writeFrame(conn, []byte{0})
				continue
			}
			s.dev.Write(base+off, data)
			if err := writeFrame(conn, []byte{1}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// region resolves an rkey to a device window.
func (s *Server) region(rkey uint32) (base, size int, ok bool) {
	tb := (kv.TableBytes(s.cfg.Buckets) + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	switch rkey {
	case rkeyTable:
		return 0, tb, true
	case rkeyPoolBase:
		return tb, s.cfg.PoolSize, true
	case rkeyPoolBase + 1:
		return tb + s.cfg.PoolSize, s.cfg.PoolSize, true
	}
	return 0, 0, false
}

// handle processes one RPC.
func (s *Server) handle(m wire.Msg) wire.Msg {
	switch m.Type {
	case wire.THello:
		return wire.Msg{
			Type: wire.THelloResp, Status: wire.StOK,
			RKey: rkeyTable, Token: rkeyPoolBase, Len: uint64(s.cfg.Buckets),
		}
	case wire.TPut:
		return s.handlePut(m)
	case wire.TGet:
		return s.handleGet(m)
	case wire.TDel:
		return s.handleDel(m)
	case wire.TStats:
		blob, err := json.Marshal(s.Stats())
		if err != nil {
			return wire.Msg{Type: wire.TStatsResp, Status: wire.StError}
		}
		return wire.Msg{Type: wire.TStatsResp, Status: wire.StOK, Value: blob}
	}
	return wire.Msg{Type: m.Type + 1, Status: wire.StError}
}

// writePool returns the index and pool new allocations target (callers
// hold mu).
func (s *Server) writePool() (int, *kv.Pool) {
	if s.merging {
		return 1 - s.cur, s.pools[1-s.cur]
	}
	return s.cur, s.pools[s.cur]
}

// slotFor maps a pool index to the entry location slot publishing it
// (callers hold mu).
func (s *Server) slotFor(pi int) int {
	if pi == s.cur {
		return s.mark
	}
	return 1 - s.mark
}

func (s *Server) handlePut(m wire.Msg) wire.Msg {
	s.mu.Lock()
	s.stats.Puts++
	pi, pool := s.writePool()
	size := kv.ObjectSize(len(m.Key), int(m.Len))

	if s.cfg.CleanThreshold > 0 && !s.cleaning &&
		float64(pool.Free()-size) < s.cfg.CleanThreshold*float64(pool.Cap()) {
		s.cleaning = true
		s.wg.Add(1)
		go s.cleaner()
	}

	keyHash := kv.HashKey(m.Key)
	idx, existed, ok := s.table.FindSlot(keyHash)
	if !ok {
		s.mu.Unlock()
		return wire.Msg{Type: wire.TPutResp, Status: wire.StFull}
	}
	if !existed && s.mark == 1 {
		s.table.SetMark(idx, s.mark)
	}
	e := s.table.Entry(idx)
	pre := kv.NilPtr
	slot := s.slotFor(pi)
	if loc := e.Loc[slot]; loc != 0 {
		off, l, _ := kv.UnpackLoc(loc)
		pre = kv.PackVPtr(pi, off, l)
	} else if loc := e.Loc[1-slot]; loc != 0 {
		off, l, _ := kv.UnpackLoc(loc)
		pre = kv.PackVPtr(s.poolOfSlot(1-slot), off, l)
	}
	s.seq++
	h := kv.Header{
		PrePtr:    pre,
		NextPtr:   kv.NilPtr,
		Seq:       s.seq,
		CreatedAt: uint64(time.Now().UnixNano()),
		CRC:       m.Crc,
		VLen:      int(m.Len),
		Flags:     kv.FlagValid,
	}
	off, allocOK := pool.AppendObject(&h, m.Key)
	if !allocOK {
		s.mu.Unlock()
		return wire.Msg{Type: wire.TPutResp, Status: wire.StFull}
	}
	if e.Tombstone() {
		s.table.Undelete(idx)
	}
	s.table.SetLoc(idx, slot, kv.PackLoc(off, size))
	if prePool, preOff, _, ok := kv.UnpackVPtr(pre); ok {
		s.pools[prePool].SetNextPtr(preOff, kv.PackVPtr(pi, off, size))
	}
	s.mu.Unlock()
	return wire.Msg{
		Type: wire.TPutResp, Status: wire.StOK,
		RKey: rkeyPoolBase + uint32(pi), Off: off, Len: uint64(size),
	}
}

// poolOfSlot maps an entry location slot back to its pool (callers hold mu).
func (s *Server) poolOfSlot(slot int) int {
	if slot == s.mark {
		return s.cur
	}
	return 1 - s.cur
}

func (s *Server) handleGet(m wire.Msg) wire.Msg {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	_, e, found := s.table.Lookup(kv.HashKey(m.Key))
	if !found || e.Tombstone() {
		return wire.Msg{Type: wire.TGetResp, Status: wire.StNotFound}
	}
	// Prefer the staged (new-pool) location during cleaning.
	var pi int
	var off uint64
	var totalLen int
	if loc := e.Other(); loc != 0 {
		off, totalLen, _ = kv.UnpackLoc(loc)
		pi = s.poolOfSlot(1 - e.Mark())
	} else if loc := e.Current(); loc != 0 {
		off, totalLen, _ = kv.UnpackLoc(loc)
		pi = s.poolOfSlot(e.Mark())
	} else {
		return wire.Msg{Type: wire.TGetResp, Status: wire.StNotFound}
	}
	for {
		pool := s.pools[pi]
		h := pool.Header(off)
		if h.Magic != kv.Magic {
			break
		}
		if h.Valid() {
			if h.Durable() {
				return s.locResp(pi, off, totalLen, h.KLen)
			}
			val := pool.ReadValue(off, h.KLen, h.VLen)
			if crc.Checksum(val) == h.CRC {
				pool.FlushObject(off, h.KLen, h.VLen)
				pool.SetFlags(off, h.Flags|kv.FlagDurable)
				return s.locResp(pi, off, totalLen, h.KLen)
			}
			if uint64(time.Now().UnixNano())-h.CreatedAt > uint64(s.cfg.VerifyTimeout) {
				pool.SetFlags(off, h.Flags&^kv.FlagValid)
				s.stats.BGInvalidated++
			}
		}
		var ok bool
		pi, off, totalLen, ok = kv.UnpackVPtr(h.PrePtr)
		if !ok {
			break
		}
	}
	return wire.Msg{Type: wire.TGetResp, Status: wire.StNotFound}
}

func (s *Server) locResp(pi int, off uint64, totalLen, klen int) wire.Msg {
	return wire.Msg{
		Type: wire.TGetResp, Status: wire.StOK,
		RKey: rkeyPoolBase + uint32(pi), Off: off, Len: uint64(totalLen), KLen: uint32(klen),
	}
}

func (s *Server) handleDel(m wire.Msg) wire.Msg {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Dels++
	idx, e, found := s.table.Lookup(kv.HashKey(m.Key))
	if !found || e.Tombstone() {
		return wire.Msg{Type: wire.TDelResp, Status: wire.StNotFound}
	}
	s.table.Delete(idx)
	return wire.Msg{Type: wire.TDelResp, Status: wire.StOK}
}

// background is the verification-and-persisting thread (§4.3.2) in real
// time: scan the active log(s), verify CRCs, flush, set durability flags.
func (s *Server) background() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.BGInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.closing:
			return
		case <-ticker.C:
		}
		for s.bgStep() {
		}
	}
}

// bgStep processes one object in one pool under the lock; returns false
// when the verifier should go back to sleep.
func (s *Server) bgStep() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	pis := []int{s.cur}
	if s.cleaning {
		pis = append(pis, 1-s.cur)
	}
	for _, pi := range pis {
		pool := s.pools[pi]
		if s.bgPos[pi]+kv.HeaderSize > pool.Used() {
			continue
		}
		off := uint64(s.bgPos[pi])
		h := pool.Header(off)
		if h.Magic != kv.Magic || h.KLen <= 0 {
			continue
		}
		size := kv.ObjectSize(h.KLen, h.VLen)
		if !h.Valid() || h.Durable() {
			s.bgPos[pi] += size
			return true
		}
		val := pool.ReadValue(off, h.KLen, h.VLen)
		if crc.Checksum(val) == h.CRC {
			pool.FlushObject(off, h.KLen, h.VLen)
			pool.SetFlags(off, h.Flags|kv.FlagDurable)
			s.stats.BGVerified++
			s.bgPos[pi] += size
			return true
		}
		if uint64(time.Now().UnixNano())-h.CreatedAt > uint64(s.cfg.VerifyTimeout) {
			pool.SetFlags(off, h.Flags&^kv.FlagValid)
			s.stats.BGInvalidated++
			s.bgPos[pi] += size
			return true
		}
		// In flight; try the other pool or sleep.
	}
	return false
}

// StartCleaning triggers a cleaning run manually; it reports false if one
// is already active.
func (s *Server) StartCleaning() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cleaning {
		return false
	}
	s.cleaning = true
	s.wg.Add(1)
	go s.cleaner()
	return true
}

// cleaner runs the two-stage compress/merge protocol. The lock is taken
// per step so request handling interleaves.
func (s *Server) cleaner() {
	defer s.wg.Done()

	s.mu.Lock()
	old := s.cur
	newer := 1 - s.cur
	s.dev.Zero(s.pools[newer].Base(), s.cfg.PoolSize)
	s.pools[newer] = kv.NewPool(s.dev, s.pools[newer].Base(), s.cfg.PoolSize)
	s.pools[newer].SetSeq(s.seq)
	s.bgPos[newer] = 0
	compressEnd := s.pools[old].Used()
	s.mu.Unlock()

	// Stage 1: compress.
	s.sweep(old, 0, compressEnd)

	// Stage 2: merge the writes that landed during compression.
	s.mu.Lock()
	s.merging = true
	mergeEnd := s.pools[old].Used()
	s.mu.Unlock()
	s.sweep(old, compressEnd, mergeEnd)

	// Final sweep: flip staged entries; reclaim dead ones.
	s.mu.Lock()
	s.table.RangeAll(func(i int, e kv.Entry) bool {
		if e.Tombstone() || e.Loc[1-s.mark] == 0 {
			s.table.Clear(i)
			return true
		}
		s.table.FlipMark(i)
		return true
	})
	s.cur = newer
	s.mark = 1 - s.mark
	s.merging = false
	s.cleaning = false
	s.stats.Cleanings++
	s.mu.Unlock()
}

// sweep reverse-scans pool pi over [lo, hi) and migrates live versions.
func (s *Server) sweep(pi, lo, hi int) {
	s.mu.Lock()
	var offs []uint64
	s.pools[pi].Scan(hi, func(off uint64, h kv.Header) bool {
		if int(off) >= lo {
			offs = append(offs, off)
		}
		return true
	})
	s.mu.Unlock()
	for i := len(offs) - 1; i >= 0; i-- {
		select {
		case <-s.closing:
			return
		default:
		}
		s.migrateOne(pi, offs[i])
	}
}

// migrateOne migrates or drops the version at off in pool pi, waiting
// (with the verify timeout) for writes still in flight.
func (s *Server) migrateOne(pi int, off uint64) {
	for {
		if s.tryMigrate(pi, off) {
			return
		}
		// An involved version's value is still in flight: release the
		// lock and retry shortly (the paper's merge rule: skip the older
		// version only once the newer "already or can be made durable").
		select {
		case <-s.closing:
			return
		case <-time.After(s.cfg.BGInterval):
		}
	}
}

// verdicts of ensureDurableLocked.
const (
	durYes = iota
	durDead
	durInFlight
)

// tryMigrate performs one migration attempt under the lock; it reports
// false when it must be retried because a value is still in flight.
func (s *Server) tryMigrate(pi int, off uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	pool := s.pools[pi]
	h := pool.Header(off)
	if h.Magic != kv.Magic || !h.Valid() {
		s.stats.CleanDropped++
		return true
	}
	key := make([]byte, h.KLen)
	s.dev.Read(pool.Base()+int(off)+kv.KeyOffset(), key)
	idx, e, found := s.table.Lookup(kv.HashKey(key))
	if !found || e.Tombstone() {
		s.stats.CleanDropped++
		return true
	}
	newSlot := 1 - s.mark
	if staged := e.Loc[newSlot]; staged != 0 {
		stagedOff, _, _ := kv.UnpackLoc(staged)
		stagedHdr := s.pools[1-pi].Header(stagedOff)
		if stagedHdr.Seq > h.Seq {
			switch s.ensureDurableLocked(1-pi, stagedOff) {
			case durYes:
				pool.SetFlags(off, h.Flags|kv.FlagTrans)
				s.stats.CleanDropped++
				return true
			case durInFlight:
				return false // wait for the newer version to settle
			}
			// durDead: fall through and migrate this older version.
		}
	}
	switch s.ensureDurableLocked(pi, off) {
	case durDead:
		s.stats.CleanDropped++
		return true
	case durInFlight:
		return false
	}
	h = pool.Header(off)
	// Copy into the new pool.
	dst := s.pools[1-pi]
	size := kv.ObjectSize(h.KLen, h.VLen)
	nh := kv.Header{
		PrePtr:    kv.NilPtr,
		NextPtr:   kv.NilPtr,
		Seq:       h.Seq,
		CreatedAt: h.CreatedAt,
		CRC:       h.CRC,
		VLen:      h.VLen,
		Flags:     kv.FlagValid | kv.FlagDurable,
	}
	newOff, ok := dst.AppendObject(&nh, key)
	if !ok {
		// Should be impossible: the live set fits by construction. Leave
		// the old copy authoritative.
		return true
	}
	dst.WriteValue(newOff, h.KLen, pool.ReadValue(off, h.KLen, h.VLen))
	dst.FlushObject(newOff, h.KLen, h.VLen)
	pool.SetFlags(off, h.Flags|kv.FlagTrans)
	s.table.SetLoc(idx, 1-s.mark, kv.PackLoc(newOff, size))
	s.stats.CleanMoved++
	return true
}

// ensureDurableLocked verifies and persists the version at off. Callers
// hold mu.
func (s *Server) ensureDurableLocked(pi int, off uint64) int {
	pool := s.pools[pi]
	h := pool.Header(off)
	if !h.Valid() {
		return durDead
	}
	if h.Durable() {
		return durYes
	}
	val := pool.ReadValue(off, h.KLen, h.VLen)
	if crc.Checksum(val) == h.CRC {
		pool.FlushObject(off, h.KLen, h.VLen)
		pool.SetFlags(off, h.Flags|kv.FlagDurable)
		return durYes
	}
	if uint64(time.Now().UnixNano())-h.CreatedAt > uint64(s.cfg.VerifyTimeout) {
		pool.SetFlags(off, h.Flags&^kv.FlagValid)
		s.stats.BGInvalidated++
		return durDead
	}
	return durInFlight
}
