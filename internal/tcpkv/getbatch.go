package tcpkv

import (
	"fmt"

	"efactory/internal/cluster"
	"efactory/internal/hint"
	"efactory/internal/kv"
	"efactory/internal/trace"
	"efactory/internal/wire"
)

// EnableHintCache attaches a client-side location/durability hint cache
// with the given per-shard capacity (hint.DefaultCap if non-positive). A
// hit lets the optimistic read fetch the hash entry and the object in one
// one-sided burst instead of walking the probe chain; the entry READ
// always rides along and is authoritative, so stale hints are detected and
// invalidated, never served. Configure before issuing concurrent ops, like
// SetHybridRead.
func (c *Client) EnableHintCache(capPerShard int) {
	c.hints = hint.New(c.shards, capPerShard)
}

// HintCache returns the attached hint cache (nil when disabled).
func (c *Client) HintCache() *hint.Cache { return c.hints }

// noteLocation records a location learned from an RPC response (PUT
// allocation, GET grant), keeping a previously learned slot — overwrites
// reuse the key's table entry.
func (c *Client) noteLocation(key []byte, pool uint32, off uint64, tlen, klen int, seq uint64, durable bool) {
	if c.hints == nil {
		return
	}
	shard := cluster.ShardFor(key, c.shards)
	slot := -1
	if prev, ok := c.hints.Peek(shard, key); ok {
		slot = prev.Slot
	}
	c.hints.Insert(shard, key, hint.Entry{
		Slot: slot, Pool: pool, Off: off, Len: tlen, KLen: klen, Seq: seq, Durable: durable,
	})
}

// dropHint invalidates key's hint (client-initiated delete).
func (c *Client) dropHint(key []byte) {
	if c.hints == nil {
		return
	}
	c.hints.Invalidate(cluster.ShardFor(key, c.shards), key)
}

// hintedRead outcomes (mirrors the simulation client).
const (
	hrMiss     = iota // no usable hint (or it proved stale): run the probe walk
	hrHit             // value returned from the hinted burst
	hrFallback        // key resolved to "ask the server"
)

// hintedRead attempts the hint-accelerated optimistic read: one one-sided
// burst carrying the hash-entry READ at the hinted slot and a speculative
// object READ at the hinted location. The entry is authoritative — the
// speculative bytes are accepted only if the entry still names that exact
// location; otherwise the object is re-fetched from where the entry points
// before the usual durability/key checks.
func (c *Client) hintedRead(tc *trace.Ctx, key []byte) ([]byte, int, error) {
	keyHash := kv.HashKey(key)
	shard := cluster.ShardOf(keyHash, c.shards)
	h, ok := c.hints.Lookup(shard, key)
	if !ok {
		return nil, hrMiss, nil
	}
	if !h.Durable {
		// Last seen undurable: the optimistic read would fail its
		// durability check anyway, so go straight to the server.
		return nil, hrFallback, nil
	}
	tableRKey, poolBase := c.shardRKeysFor(keyHash)
	slot := h.Slot
	if slot < 0 {
		slot = int(keyHash % uint64(c.buckets)) // probe-0 guess
	}
	tRead := traceNow(tc)
	resps, err := c.osExchange([][]byte{
		osReadFrame(tableRKey, uint64(slot*kv.EntrySize), kv.EntrySize),
		osReadFrame(h.Pool, h.Off, h.Len),
	})
	tc.Add("doorbell_read", tRead, traceNow(tc))
	if err != nil {
		return nil, 0, err
	}
	if len(resps[0]) < 1+kv.EntrySize || resps[0][0] != 1 || len(resps[1]) < 1 || resps[1][0] != 1 {
		// NAKed: the hinted region no longer resolves (relayout, bad hint).
		c.hints.Invalidate(shard, key)
		return nil, hrMiss, nil
	}
	e := kv.DecodeEntry(resps[0][1:])
	obj := resps[1][1:]
	if e.KeyHash != keyHash || e.Free() {
		// Wrong slot (cleaning or churn moved the entry): probe normally.
		c.hints.Invalidate(shard, key)
		return nil, hrMiss, nil
	}
	if e.Tombstone() || e.Current() == 0 {
		c.hints.Invalidate(shard, key)
		return nil, hrFallback, nil
	}
	off, tlen, _ := kv.UnpackLoc(e.Current())
	pool := poolBase + uint32(e.Mark()&1)
	if off != h.Off || tlen != h.Len || pool != h.Pool {
		// The key moved; the speculative bytes are a stale version. The
		// entry names the current location — fetch that instead.
		c.hints.Invalidate(shard, key)
		tObj := traceNow(tc)
		obj, err = c.read(pool, off, tlen)
		tc.Add("object_read", tObj, traceNow(tc))
		if err != nil {
			return nil, 0, err
		}
	}
	hd := kv.DecodeHeader(obj)
	if hd.Magic != kv.Magic || !hd.Valid() || !hd.Durable() {
		return nil, hrFallback, nil
	}
	if hd.KLen != len(key) || string(obj[kv.KeyOffset():kv.KeyOffset()+hd.KLen]) != string(key) {
		c.hints.Invalidate(shard, key)
		return nil, hrFallback, nil
	}
	vo := kv.ValueOffset(hd.KLen)
	if vo+hd.VLen > len(obj) {
		c.hints.Invalidate(shard, key)
		return nil, hrFallback, nil
	}
	c.hints.Insert(shard, key, hint.Entry{
		Slot: slot, Pool: pool, Off: off, Len: tlen, KLen: hd.KLen, Seq: hd.Seq, Durable: true,
	})
	c.bump(&c.HintedReads)
	return append([]byte(nil), obj[vo:vo+hd.VLen]...), hrHit, nil
}

// tgbPhase is the per-key step a GetBatch round just issued.
type tgbPhase int

const (
	tgbIdle   tgbPhase = iota
	tgbHinted          // entry + speculative object pair in flight
	tgbEntry           // probe entry READ in flight
	tgbObject          // object READ (location known from the entry) in flight
)

// tgbState tracks one key of a GetBatch through the optimistic rounds.
type tgbState struct {
	keyHash uint64
	shard   int
	table   uint32 // owning shard's table rkey
	poolB   uint32 // owning shard's pool rkey base
	probe   int
	slot    int // slot where the entry matched; -1 until known
	phase   tgbPhase
	hinted  hint.Entry
	useHint bool
	wantObj bool // entry resolved a location; object READ pending
	obj     []byte
	pool    uint32
	off     uint64
	tlen    int

	done     bool
	fallback bool
}

// GetBatch resolves len(keys) GETs as one operation: each round, the
// one-sided READs of every in-flight key go out in ONE burst on the
// one-sided channel (frames posted back-to-back before the first response
// is awaited — the TCP analogue of a doorbell-batched READ chain), and
// keys whose optimistic read fails verification fall back together in one
// TGetBatch RPC on the pipelined channel followed by one more burst
// fetching the granted objects. Hint-cache hits skip the probe walk.
//
// Results are index-aligned with keys: values[i] is valid iff errs[i] is
// nil (ErrNotFound, or a transport/status error shared by every key the
// failure reached). The whole batch retries together under the client's
// RetryPolicy.
func (c *Client) GetBatch(keys [][]byte) ([][]byte, []error) {
	if len(keys) == 0 {
		return make([][]byte, 0), make([]error, 0)
	}
	tc, t0 := c.beginTrace("get_batch", kv.HashKey(keys[0]))
	vals, errs := c.getBatchCtx(tc, keys)
	ferr := error(nil)
	for i := 0; ferr == nil && i < len(errs); i++ {
		if errs[i] != nil && errs[i] != ErrNotFound {
			ferr = errs[i]
		}
	}
	c.endTrace(tc, t0, ferr)
	return vals, errs
}

// getBatchCtx is GetBatch's body under a caller-owned trace context.
func (c *Client) getBatchCtx(tc *trace.Ctx, keys [][]byte) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	done := make([]bool, len(keys))
	err := c.retrying(func() error {
		for i := range keys {
			vals[i], errs[i], done[i] = nil, nil, false
		}
		return c.getBatchOnce(tc, keys, vals, errs, done)
	})
	if err != nil {
		for i := range keys {
			if !done[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return vals, errs
}

// getBatchOnce runs one attempt of a GetBatch. Transport failures return
// an error (the retry layer redials and replays the whole batch);
// per-key protocol outcomes land in vals/errs/done.
func (c *Client) getBatchOnce(tc *trace.Ctx, keys [][]byte, vals [][]byte, errs []error, done []bool) error {
	c.mu.Lock()
	c.BatchedGets += len(keys)
	c.mu.Unlock()
	sts := make([]tgbState, len(keys))
	hybrid := c.hybrid
	for i, k := range keys {
		st := &sts[i]
		st.keyHash = kv.HashKey(k)
		st.shard = cluster.ShardOf(st.keyHash, c.shards)
		st.table, st.poolB = c.shardRKeysFor(st.keyHash)
		st.slot = -1
		if !hybrid {
			st.fallback = true
			c.bump(&c.RPCReads)
			continue
		}
		if c.hints != nil {
			if h, ok := c.hints.Lookup(st.shard, k); ok {
				if !h.Durable {
					st.fallback = true
					c.bump(&c.FallbackReads)
					continue
				}
				st.hinted, st.useHint = h, true
			}
		}
	}
	fallback := func(i int) {
		sts[i].fallback = true
		c.bump(&c.FallbackReads)
	}
	invalidate := func(i int) {
		if c.hints != nil {
			c.hints.Invalidate(sts[i].shard, keys[i])
		}
	}
	finish := func(i int, hd kv.Header) {
		st := &sts[i]
		vo := kv.ValueOffset(hd.KLen)
		vals[i] = append([]byte(nil), st.obj[vo:vo+hd.VLen]...)
		done[i] = true
		st.done = true
		c.bump(&c.PureReads)
		if st.phase == tgbHinted {
			c.bump(&c.HintedReads)
		}
		if c.hints != nil {
			c.hints.Insert(st.shard, keys[i], hint.Entry{
				Slot: st.slot, Pool: st.pool, Off: st.off, Len: st.tlen,
				KLen: hd.KLen, Seq: hd.Seq, Durable: true,
			})
		}
	}
	validateObj := func(i int) {
		st := &sts[i]
		hd := kv.DecodeHeader(st.obj)
		if hd.Magic != kv.Magic || !hd.Valid() || !hd.Durable() {
			fallback(i) // not completely durable: location may still be right
			return
		}
		k := keys[i]
		if hd.KLen != len(k) || string(st.obj[kv.KeyOffset():kv.KeyOffset()+hd.KLen]) != string(k) {
			invalidate(i)
			fallback(i)
			return
		}
		if kv.ValueOffset(hd.KLen)+hd.VLen > len(st.obj) {
			invalidate(i)
			fallback(i)
			return
		}
		finish(i, hd)
	}

	type issued struct {
		i      int
		frames int // 1 (entry or object) or 2 (hinted entry+object pair)
	}
	var acted []issued
	for hybrid {
		var frames [][]byte
		acted = acted[:0]
		for i := range sts {
			st := &sts[i]
			if st.done || st.fallback {
				continue
			}
			switch {
			case st.wantObj:
				st.wantObj = false
				st.phase = tgbObject
				frames = append(frames, osReadFrame(st.pool, st.off, st.tlen))
				acted = append(acted, issued{i, 1})
			case st.useHint && st.phase == tgbIdle:
				st.phase = tgbHinted
				slot := st.hinted.Slot
				if slot < 0 {
					slot = int(st.keyHash % uint64(c.buckets))
				}
				st.slot = slot
				st.pool, st.off, st.tlen = st.hinted.Pool, st.hinted.Off, st.hinted.Len
				frames = append(frames,
					osReadFrame(st.table, uint64(slot*kv.EntrySize), kv.EntrySize),
					osReadFrame(st.pool, st.off, st.tlen))
				acted = append(acted, issued{i, 2})
			default:
				st.phase = tgbEntry
				st.slot = (int(st.keyHash%uint64(c.buckets)) + st.probe) % c.buckets
				frames = append(frames, osReadFrame(st.table, uint64(st.slot*kv.EntrySize), kv.EntrySize))
				acted = append(acted, issued{i, 1})
			}
		}
		if len(frames) == 0 {
			break
		}
		tRead := traceNow(tc)
		resps, err := c.osExchange(frames)
		tc.Add("doorbell_read", tRead, traceNow(tc))
		if err != nil {
			return err
		}
		ri := 0
		for _, a := range acted {
			st := &sts[a.i]
			mine := resps[ri : ri+a.frames]
			ri += a.frames
			naked := false
			for _, r := range mine {
				if len(r) < 1 || r[0] != 1 {
					naked = true
				}
			}
			if naked {
				// A NAK means the addressed region no longer resolves; for
				// a hinted key that is a stale hint, otherwise give up the
				// optimistic path for this key.
				if st.phase == tgbHinted {
					invalidate(a.i)
					st.phase, st.slot, st.probe, st.useHint = tgbIdle, -1, 0, false
				} else {
					fallback(a.i)
				}
				continue
			}
			switch st.phase {
			case tgbHinted:
				e := kv.DecodeEntry(mine[0][1:])
				st.obj = mine[1][1:]
				if e.KeyHash != st.keyHash || e.Free() {
					// Wrong slot: hint is stale, run the probe walk.
					invalidate(a.i)
					st.phase, st.slot, st.probe, st.useHint = tgbIdle, -1, 0, false
					continue
				}
				if e.Tombstone() || e.Current() == 0 {
					invalidate(a.i)
					fallback(a.i)
					continue
				}
				off, tlen, _ := kv.UnpackLoc(e.Current())
				pool := st.poolB + uint32(e.Mark()&1)
				if off == st.off && tlen == st.tlen && pool == st.pool {
					validateObj(a.i) // speculative bytes are the live version
					continue
				}
				// Key moved: re-fetch from the entry's location next round.
				invalidate(a.i)
				st.pool, st.off, st.tlen = pool, off, tlen
				st.wantObj = true
			case tgbEntry:
				e := kv.DecodeEntry(mine[0][1:])
				switch {
				case e.KeyHash == 0:
					if c.epoch.Load() != 0 {
						// Clustered: absence must be confirmed by the owner
						// (the key may have migrated away and been purged).
						fallback(a.i)
						continue
					}
					errs[a.i] = ErrNotFound
					st.done = true
				case e.Free():
					st.probe++
					if st.probe >= 4 {
						st.slot = -1
						fallback(a.i)
					}
				case e.KeyHash == st.keyHash:
					if e.Tombstone() || e.Current() == 0 {
						fallback(a.i)
						continue
					}
					off, tlen, _ := kv.UnpackLoc(e.Current())
					st.pool = st.poolB + uint32(e.Mark()&1)
					st.off, st.tlen = off, tlen
					st.wantObj = true
				default:
					st.probe++
					if st.probe >= 4 {
						st.slot = -1
						fallback(a.i)
					}
				}
			case tgbObject:
				st.obj = mine[0][1:]
				validateObj(a.i)
			}
		}
	}

	// RPC fallback: every unresolved key rides ONE TGetBatch on the
	// pipelined channel, then one burst fetches the granted objects.
	var fbIdx []int
	for i := range sts {
		if !sts[i].done && errs[i] == nil {
			fbIdx = append(fbIdx, i)
		}
	}
	if len(fbIdx) == 0 {
		return nil
	}
	ops := make([]wire.GetOp, len(fbIdx))
	for j, i := range fbIdx {
		slot := wire.NoSlot
		if sts[i].slot >= 0 {
			slot = uint32(sts[i].slot)
		}
		ops[j] = wire.GetOp{Slot: slot, Key: keys[i]}
	}
	tRPC := traceNow(tc)
	resp, err := c.rpc(wire.Msg{Type: wire.TGetBatch, Trace: tc.ID(), Token: uint32(c.epoch.Load()), Value: wire.EncodeGetOps(ops)})
	tc.Add("get_rpc", tRPC, traceNow(tc))
	if err != nil {
		return err
	}
	if resp.Status == wire.StWrongEpoch {
		return wrongEpoch(resp)
	}
	if resp.Status != wire.StOK {
		return fmt.Errorf("tcpkv: get batch status %d", resp.Status)
	}
	grants, err := wire.DecodeGetGrants(resp.Value)
	if err != nil {
		return fmt.Errorf("tcpkv: malformed get batch response: %w", err)
	}
	if len(grants) != len(fbIdx) {
		return fmt.Errorf("tcpkv: get batch returned %d grants for %d ops", len(grants), len(fbIdx))
	}
	var frames [][]byte
	var rIdx []int
	for j, g := range grants {
		i := fbIdx[j]
		switch g.Status {
		case wire.StOK:
			frames = append(frames, osReadFrame(g.RKey, g.Off, int(g.Len)))
			rIdx = append(rIdx, j)
		case wire.StNotFound:
			errs[i] = ErrNotFound
		default:
			errs[i] = fmt.Errorf("tcpkv: get status %d", g.Status)
		}
	}
	if len(frames) == 0 {
		return nil
	}
	tRead := traceNow(tc)
	resps, err := c.osExchange(frames)
	tc.Add("doorbell_read", tRead, traceNow(tc))
	if err != nil {
		return err
	}
	for n, j := range rIdx {
		i, g := fbIdx[j], grants[j]
		r := resps[n]
		if len(r) < 1 || r[0] != 1 {
			errs[i] = fmt.Errorf("tcpkv: one-sided read NAK for granted object at %d", g.Off)
			continue
		}
		obj := r[1:]
		hd := kv.DecodeHeader(obj)
		vo := kv.ValueOffset(hd.KLen)
		if hd.Magic != kv.Magic || vo+hd.VLen > len(obj) {
			errs[i] = fmt.Errorf("tcpkv: corrupt object from server at %d", g.Off)
			continue
		}
		vals[i] = append([]byte(nil), obj[vo:vo+hd.VLen]...)
		done[i] = true
		if c.hints != nil {
			c.hints.Insert(sts[i].shard, keys[i], hint.Entry{
				Slot: int(g.Slot), Pool: g.RKey, Off: g.Off, Len: int(g.Len),
				KLen: int(g.KLen), Seq: g.Seq, Durable: g.Durable(),
			})
		}
	}
	return nil
}
