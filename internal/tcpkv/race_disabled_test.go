//go:build !race

package tcpkv

const raceEnabled = false
