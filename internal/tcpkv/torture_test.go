package tcpkv

import (
	"testing"

	"efactory/internal/fault"
)

// tcpTortureConfig keeps the wall-clock sweep affordable: a TCP run costs
// tens of milliseconds (real sockets, real file I/O, server restart), so
// the workload is short and sweep points are subsampled.
func tcpTortureConfig() fault.Config {
	// VerifyTimeout is wall-clock over TCP: stretch it under the race
	// detector (raceScale) so a merely slow client-active write is never
	// invalidated as torn mid-sweep.
	return fault.Config{Ops: 50, CleanEvery: 25, VerifyTimeout: raceScale(tcpVerifyTimeout)}
}

// TestTCPTortureCountingRun sanity-checks the measuring run: no crash, no
// violations, real workload coverage.
func TestTCPTortureCountingRun(t *testing.T) {
	res, err := RunTCPTorture(tcpTortureConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations in the no-crash run: %v", res.Violations)
	}
	if res.Tripped || res.Boundaries < 100 {
		t.Fatalf("counting run: tripped=%v boundaries=%d", res.Tripped, res.Boundaries)
	}
	if res.Stats.Puts == 0 || res.Stats.Dels == 0 {
		t.Fatalf("workload coverage too thin: %+v", res.Stats)
	}
}

// TestTCPTortureMidCleaningShutdown replays the workload shape that found
// the staged-slot recovery bug: CleanEvery short enough that a cleaning
// run is still mid-flight (merge stage) when the process shuts down, after
// a DELETE plus re-PUT landed on a hot key. With seed 1 the re-PUT
// publishes only through the staged location slot; recovery must restore
// it from there even though the mark bit never flipped. No injection — the
// plain run plus restart is the repro.
func TestTCPTortureMidCleaningShutdown(t *testing.T) {
	res, err := RunTCPTorture(fault.Config{Seed: 1, Ops: 40, CleanEvery: 14, VerifyTimeout: raceScale(tcpVerifyTimeout)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
}

// TestTCPTortureSweep is the TCP-transport acceptance sweep: crash points
// spread across the workload, a process restart (file reopen) and oracle
// check after each. Boundary counts drift between runs of one seed (real
// scheduling), so the sweep subsamples rather than visiting every K.
func TestTCPTortureSweep(t *testing.T) {
	points := 10
	if testing.Short() {
		points = 4
	}
	sr, err := fault.Sweep(RunTCPTorture, tcpTortureConfig(), []uint64{1, 2}, points)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, v := range sr.Violations {
		t.Error(v)
	}
	if len(sr.Violations) == 0 && sr.Runs < 8 {
		t.Fatalf("sweep ran only %d runs", sr.Runs)
	}
}

// TestTCPTortureSweepGetBatch reruns the TCP sweep with the batched
// multi-GET + hint-cache workload leg. This leg is what exposed the
// oracle's observation-anchored monotonicity bug (an acked-but-unverified
// newer PUT was treated as a regression when recovery rolled forward to
// it), pinned in fault's oracle tests.
func TestTCPTortureSweepGetBatch(t *testing.T) {
	cfg := tcpTortureConfig()
	cfg.GetBatch = true
	points := 8
	if testing.Short() {
		points = 4
	}
	sr, err := fault.Sweep(RunTCPTorture, cfg, []uint64{1, 2}, points)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, v := range sr.Violations {
		t.Error(v)
	}
	if len(sr.Violations) == 0 && sr.Runs < 8 {
		t.Fatalf("sweep ran only %d runs", sr.Runs)
	}
}

// TestTCPTortureSweepTxn reruns the TCP sweep with the transactional
// workload leg: multi-key commits and snapshot reads over the pipelined
// mux, a process restart after each crash point, and the oracle's
// all-in-or-all-out rule on every recovered image.
func TestTCPTortureSweepTxn(t *testing.T) {
	cfg := tcpTortureConfig()
	cfg.Txn = true
	points := 8
	if testing.Short() {
		points = 4
	}
	sr, err := fault.Sweep(RunTCPTorture, cfg, []uint64{1, 2}, points)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, v := range sr.Violations {
		t.Error(v)
	}
	if len(sr.Violations) == 0 && sr.Runs < 8 {
		t.Fatalf("sweep ran only %d runs", sr.Runs)
	}
}
