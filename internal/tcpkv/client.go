package tcpkv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"time"

	"efactory/internal/crc"
	"efactory/internal/kv"
	"efactory/internal/obs"
	"efactory/internal/wire"
)

// ErrNotFound is returned by Get/Delete for absent keys.
var ErrNotFound = errors.New("tcpkv: key not found")

// ErrServerFull is returned by Put when the pool is exhausted.
var ErrServerFull = errors.New("tcpkv: server pool full")

// RetryPolicy governs how the client reacts to transient transport
// failures (connection resets, timeouts, truncated response frames): each
// op is retried on a fresh pair of connections with exponential backoff.
// Retried ops are at-least-once — a lost response frame does not reveal
// whether the server applied the op, so a retried PUT may write twice and
// a retried DELETE may find the key already gone (the client maps that to
// success, not ErrNotFound, when a prior attempt's outcome was unknown).
type RetryPolicy struct {
	Attempts   int           // total tries per op; <= 1 means no retry
	Backoff    time.Duration // delay before the first retry, doubling after
	MaxBackoff time.Duration // backoff cap (0 = uncapped)
	Timeout    time.Duration // per-attempt I/O deadline (0 = none)
}

// DefaultRetryPolicy is a sensible policy for flaky networks.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Attempts:   4,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Timeout:    2 * time.Second,
	}
}

// Client is a TCP-mode eFactory client implementing the client-active
// write scheme and the hybrid read scheme over two connections: an RPC
// channel and a one-sided channel.
type Client struct {
	mu      sync.Mutex // operations are serialized per client, like a QP
	addr    string
	retry   RetryPolicy // zero value: single attempt, no deadlines
	rpcConn net.Conn
	osConn  net.Conn

	tableRKey    uint32 // shard 0's table rkey; shard s adds rkeysPerShard*s
	poolRKeyBase uint32 // shard 0's pools; shard s pool i is poolRKeyBase + rkeysPerShard*s + i
	buckets      int    // per shard
	shards       int

	// Hybrid disabled => every GET is an RPC (for comparison runs).
	hybrid bool

	// PureReads / FallbackReads / RPCReads mirror the simulation client's
	// path counters.
	PureReads     int
	FallbackReads int
	RPCReads      int
	// Retries and Reconnects count recovery actions taken under the
	// client's RetryPolicy.
	Retries    int
	Reconnects int
}

// dialConns opens the RPC and one-sided channels to addr.
func dialConns(addr string) (rpcConn, osConn net.Conn, err error) {
	rpcConn, err = net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	if _, err := rpcConn.Write([]byte{chanRPC}); err != nil {
		rpcConn.Close()
		return nil, nil, err
	}
	osConn, err = net.Dial("tcp", addr)
	if err != nil {
		rpcConn.Close()
		return nil, nil, err
	}
	if _, err := osConn.Write([]byte{chanOneSided}); err != nil {
		rpcConn.Close()
		osConn.Close()
		return nil, nil, err
	}
	return rpcConn, osConn, nil
}

// Dial connects to a tcpkv server and performs the geometry handshake.
// The returned client performs no retries; see SetRetryPolicy.
func Dial(addr string) (*Client, error) {
	rpcConn, osConn, err := dialConns(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{addr: addr, rpcConn: rpcConn, osConn: osConn, hybrid: true}
	resp, err := c.rpc(wire.Msg{Type: wire.THello})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpkv: handshake: %w", err)
	}
	c.tableRKey = resp.RKey
	c.poolRKeyBase = resp.Token
	c.buckets = int(resp.Len)
	c.shards = int(resp.Off)
	if c.shards <= 0 {
		c.shards = 1 // pre-sharding servers leave Off zero
	}
	if c.buckets <= 0 {
		c.Close()
		return nil, errors.New("tcpkv: bad handshake geometry")
	}
	return c, nil
}

// shardRKeysFor returns the table rkey and pool rkey base of the shard
// owning keyHash.
func (c *Client) shardRKeysFor(keyHash uint64) (table, poolBase uint32) {
	sh := uint32(kv.ShardOf(keyHash, c.shards))
	return c.tableRKey + rkeysPerShard*sh, c.poolRKeyBase + rkeysPerShard*sh
}

// Close tears both connections down.
func (c *Client) Close() error {
	err1 := c.rpcConn.Close()
	err2 := c.osConn.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SetHybridRead toggles the hybrid read scheme.
func (c *Client) SetHybridRead(on bool) { c.hybrid = on }

// SetRetryPolicy installs rp; ops issued afterwards retry transient
// transport failures (reconnecting between attempts) and bound each
// attempt with rp.Timeout.
func (c *Client) SetRetryPolicy(rp RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = rp
}

// reconnect replaces both connections with fresh ones. Geometry is not
// re-fetched: it is a property of the server's device layout, which a
// reconnect cannot change. Callers hold c.mu.
func (c *Client) reconnect() error {
	c.rpcConn.Close()
	c.osConn.Close()
	rpcConn, osConn, err := dialConns(c.addr)
	if err != nil {
		return err
	}
	c.rpcConn, c.osConn = rpcConn, osConn
	c.Reconnects++
	return nil
}

// transient reports whether err is a transport failure worth retrying on
// a fresh connection. Protocol outcomes (ErrNotFound, ErrServerFull,
// status errors, NAKs) are final; connection-level failures — resets,
// closed or half-closed connections, truncated frames, deadline
// expiries — are not.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.As(err, &ne)
}

// retrying runs do under the client's RetryPolicy: on a transient error
// it backs off (exponentially, capped), reconnects, and tries again.
// Callers hold c.mu.
func (c *Client) retrying(do func() error) error {
	attempts := c.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.retry.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.Retries++
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
				if c.retry.MaxBackoff > 0 && backoff > c.retry.MaxBackoff {
					backoff = c.retry.MaxBackoff
				}
			}
			if rerr := c.reconnect(); rerr != nil {
				err = rerr
				continue
			}
		}
		err = do()
		if !transient(err) {
			return err
		}
	}
	return err
}

// armDeadline bounds the next I/O on conn by the policy's per-attempt
// timeout.
func (c *Client) armDeadline(conn net.Conn) {
	if c.retry.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(c.retry.Timeout))
	}
}

// rpc performs one request/response on the RPC channel.
func (c *Client) rpc(req wire.Msg) (wire.Msg, error) {
	c.armDeadline(c.rpcConn)
	if err := writeFrame(c.rpcConn, req.Encode()); err != nil {
		return wire.Msg{}, err
	}
	raw, err := readFrame(c.rpcConn)
	if err != nil {
		return wire.Msg{}, err
	}
	return wire.Decode(raw)
}

// read performs a one-sided READ of length bytes at (rkey, off).
func (c *Client) read(rkey uint32, off uint64, length int) ([]byte, error) {
	c.armDeadline(c.osConn)
	frame := make([]byte, 17)
	frame[0] = opRead
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], off)
	binary.BigEndian.PutUint32(frame[13:], uint32(length))
	if err := writeFrame(c.osConn, frame); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.osConn)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 || resp[0] != 1 {
		return nil, errors.New("tcpkv: one-sided read NAK")
	}
	return resp[1:], nil
}

// write performs a one-sided WRITE of data at (rkey, off).
func (c *Client) write(rkey uint32, off uint64, data []byte) error {
	c.armDeadline(c.osConn)
	frame := make([]byte, 17+len(data))
	frame[0] = opWrite
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], off)
	binary.BigEndian.PutUint32(frame[13:], uint32(len(data)))
	copy(frame[17:], data)
	if err := writeFrame(c.osConn, frame); err != nil {
		return err
	}
	resp, err := readFrame(c.osConn)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != 1 {
		return errors.New("tcpkv: one-sided write NAK")
	}
	return nil
}

// Put stores value under key: checksum, allocation RPC, one-sided value
// write — no durability round trip (asynchronous durability).
func (c *Client) Put(key, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := crc.Checksum(value)
	return c.retrying(func() error {
		// A retried attempt redoes the allocation RPC: the previous
		// attempt's slot (if it was granted) is left torn and gets
		// invalidated by background verification.
		resp, err := c.rpc(wire.Msg{Type: wire.TPut, Crc: sum, Len: uint64(len(value)), Key: key})
		if err != nil {
			return err
		}
		switch resp.Status {
		case wire.StOK:
		case wire.StFull:
			return ErrServerFull
		default:
			return fmt.Errorf("tcpkv: put status %d", resp.Status)
		}
		return c.write(resp.RKey, resp.Off+uint64(kv.ValueOffset(len(key))), value)
	})
}

// Get fetches key's value with the hybrid read scheme.
func (c *Client) Get(key []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []byte
	err := c.retrying(func() error {
		if c.hybrid {
			val, ok, err := c.pureRead(key)
			if err != nil {
				return err
			}
			if ok {
				c.PureReads++
				out = val
				return nil
			}
			c.FallbackReads++
		} else {
			c.RPCReads++
		}
		val, err := c.rpcRead(key)
		if err != nil {
			return err
		}
		out = val
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pureRead is the optimistic one-sided path; ok is false on fallback.
func (c *Client) pureRead(key []byte) (val []byte, ok bool, err error) {
	keyHash := kv.HashKey(key)
	tableRKey, poolBase := c.shardRKeysFor(keyHash)
	idx := int(keyHash % uint64(c.buckets))
	var entry kv.Entry
	found := false
	for probe := 0; probe < 4; probe++ {
		bucket := (idx + probe) % c.buckets
		raw, err := c.read(tableRKey, uint64(bucket*kv.EntrySize), kv.EntrySize)
		if err != nil {
			return nil, false, err
		}
		e := kv.DecodeEntry(raw)
		if e.KeyHash == 0 {
			return nil, false, ErrNotFound
		}
		if e.Free() {
			continue
		}
		if e.KeyHash == keyHash {
			entry, found = e, true
			break
		}
	}
	if !found || entry.Tombstone() || entry.Current() == 0 {
		return nil, false, nil
	}
	off, totalLen, _ := kv.UnpackLoc(entry.Current())
	obj, err := c.read(poolBase+uint32(entry.Mark()&1), off, totalLen)
	if err != nil {
		return nil, false, err
	}
	h := kv.DecodeHeader(obj)
	if h.Magic != kv.Magic || !h.Valid() || !h.Durable() {
		return nil, false, nil
	}
	if h.KLen != len(key) || string(obj[kv.KeyOffset():kv.KeyOffset()+h.KLen]) != string(key) {
		return nil, false, nil
	}
	vo := kv.ValueOffset(h.KLen)
	if vo+h.VLen > len(obj) {
		return nil, false, nil
	}
	return append([]byte(nil), obj[vo:vo+h.VLen]...), true, nil
}

// rpcRead is the RPC+one-sided fallback.
func (c *Client) rpcRead(key []byte) ([]byte, error) {
	resp, err := c.rpc(wire.Msg{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, err
	}
	if resp.Status == wire.StNotFound {
		return nil, ErrNotFound
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: get status %d", resp.Status)
	}
	obj, err := c.read(resp.RKey, resp.Off, int(resp.Len))
	if err != nil {
		return nil, err
	}
	h := kv.DecodeHeader(obj)
	vo := kv.ValueOffset(h.KLen)
	if h.Magic != kv.Magic || vo+h.VLen > len(obj) {
		return nil, errors.New("tcpkv: corrupt object from server")
	}
	return append([]byte(nil), obj[vo:vo+h.VLen]...), nil
}

// ServerStats fetches the server's counters.
func (c *Client) ServerStats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != wire.StOK {
		return Stats{}, fmt.Errorf("tcpkv: stats status %d", resp.Status)
	}
	var st Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return Stats{}, fmt.Errorf("tcpkv: stats decode: %w", err)
	}
	return st, nil
}

// ShardStats fetches per-shard server counters (one element per shard).
// Pre-sharding servers answer the unknown type with an error status, which
// surfaces as a normal error here.
func (c *Client) ShardStats() ([]Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TShardStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: shard stats status %d", resp.Status)
	}
	var st []Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return nil, fmt.Errorf("tcpkv: shard stats decode: %w", err)
	}
	return st, nil
}

// Metrics fetches the server's telemetry snapshot (per-shard per-op
// latency histograms, gauges, counters). Servers predating the TMetrics
// type answer with an error status, which surfaces as a normal error.
func (c *Client) Metrics() (obs.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TMetrics})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Status != wire.StOK {
		return obs.Snapshot{}, fmt.Errorf("tcpkv: metrics status %d", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp.Value, &snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("tcpkv: metrics decode: %w", err)
	}
	return snap, nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	unknown := false // a failed attempt may have applied server-side
	return c.retrying(func() error {
		resp, err := c.rpc(wire.Msg{Type: wire.TDel, Key: key})
		if err != nil {
			unknown = true
			return err
		}
		if resp.Status == wire.StNotFound {
			if unknown {
				return nil // an earlier attempt's delete landed
			}
			return ErrNotFound
		}
		return nil
	})
}
