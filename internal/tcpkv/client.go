package tcpkv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"efactory/internal/crc"
	"efactory/internal/kv"
	"efactory/internal/obs"
	"efactory/internal/wire"
)

// ErrNotFound is returned by Get/Delete for absent keys.
var ErrNotFound = errors.New("tcpkv: key not found")

// ErrServerFull is returned by Put when the pool is exhausted.
var ErrServerFull = errors.New("tcpkv: server pool full")

// Client is a TCP-mode eFactory client implementing the client-active
// write scheme and the hybrid read scheme over two connections: an RPC
// channel and a one-sided channel.
type Client struct {
	mu      sync.Mutex // operations are serialized per client, like a QP
	rpcConn net.Conn
	osConn  net.Conn

	tableRKey    uint32 // shard 0's table rkey; shard s adds rkeysPerShard*s
	poolRKeyBase uint32 // shard 0's pools; shard s pool i is poolRKeyBase + rkeysPerShard*s + i
	buckets      int    // per shard
	shards       int

	// Hybrid disabled => every GET is an RPC (for comparison runs).
	hybrid bool

	// PureReads / FallbackReads / RPCReads mirror the simulation client's
	// path counters.
	PureReads     int
	FallbackReads int
	RPCReads      int
}

// Dial connects to a tcpkv server and performs the geometry handshake.
func Dial(addr string) (*Client, error) {
	rpcConn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := rpcConn.Write([]byte{chanRPC}); err != nil {
		rpcConn.Close()
		return nil, err
	}
	osConn, err := net.Dial("tcp", addr)
	if err != nil {
		rpcConn.Close()
		return nil, err
	}
	if _, err := osConn.Write([]byte{chanOneSided}); err != nil {
		rpcConn.Close()
		osConn.Close()
		return nil, err
	}
	c := &Client{rpcConn: rpcConn, osConn: osConn, hybrid: true}
	resp, err := c.rpc(wire.Msg{Type: wire.THello})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpkv: handshake: %w", err)
	}
	c.tableRKey = resp.RKey
	c.poolRKeyBase = resp.Token
	c.buckets = int(resp.Len)
	c.shards = int(resp.Off)
	if c.shards <= 0 {
		c.shards = 1 // pre-sharding servers leave Off zero
	}
	if c.buckets <= 0 {
		c.Close()
		return nil, errors.New("tcpkv: bad handshake geometry")
	}
	return c, nil
}

// shardRKeysFor returns the table rkey and pool rkey base of the shard
// owning keyHash.
func (c *Client) shardRKeysFor(keyHash uint64) (table, poolBase uint32) {
	sh := uint32(kv.ShardOf(keyHash, c.shards))
	return c.tableRKey + rkeysPerShard*sh, c.poolRKeyBase + rkeysPerShard*sh
}

// Close tears both connections down.
func (c *Client) Close() error {
	err1 := c.rpcConn.Close()
	err2 := c.osConn.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SetHybridRead toggles the hybrid read scheme.
func (c *Client) SetHybridRead(on bool) { c.hybrid = on }

// rpc performs one request/response on the RPC channel.
func (c *Client) rpc(req wire.Msg) (wire.Msg, error) {
	if err := writeFrame(c.rpcConn, req.Encode()); err != nil {
		return wire.Msg{}, err
	}
	raw, err := readFrame(c.rpcConn)
	if err != nil {
		return wire.Msg{}, err
	}
	return wire.Decode(raw)
}

// read performs a one-sided READ of length bytes at (rkey, off).
func (c *Client) read(rkey uint32, off uint64, length int) ([]byte, error) {
	frame := make([]byte, 17)
	frame[0] = opRead
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], off)
	binary.BigEndian.PutUint32(frame[13:], uint32(length))
	if err := writeFrame(c.osConn, frame); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.osConn)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 || resp[0] != 1 {
		return nil, errors.New("tcpkv: one-sided read NAK")
	}
	return resp[1:], nil
}

// write performs a one-sided WRITE of data at (rkey, off).
func (c *Client) write(rkey uint32, off uint64, data []byte) error {
	frame := make([]byte, 17+len(data))
	frame[0] = opWrite
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], off)
	binary.BigEndian.PutUint32(frame[13:], uint32(len(data)))
	copy(frame[17:], data)
	if err := writeFrame(c.osConn, frame); err != nil {
		return err
	}
	resp, err := readFrame(c.osConn)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != 1 {
		return errors.New("tcpkv: one-sided write NAK")
	}
	return nil
}

// Put stores value under key: checksum, allocation RPC, one-sided value
// write — no durability round trip (asynchronous durability).
func (c *Client) Put(key, value []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := crc.Checksum(value)
	resp, err := c.rpc(wire.Msg{Type: wire.TPut, Crc: sum, Len: uint64(len(value)), Key: key})
	if err != nil {
		return err
	}
	switch resp.Status {
	case wire.StOK:
	case wire.StFull:
		return ErrServerFull
	default:
		return fmt.Errorf("tcpkv: put status %d", resp.Status)
	}
	return c.write(resp.RKey, resp.Off+uint64(kv.ValueOffset(len(key))), value)
}

// Get fetches key's value with the hybrid read scheme.
func (c *Client) Get(key []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hybrid {
		val, ok, err := c.pureRead(key)
		if err != nil {
			return nil, err
		}
		if ok {
			c.PureReads++
			return val, nil
		}
		c.FallbackReads++
	} else {
		c.RPCReads++
	}
	return c.rpcRead(key)
}

// pureRead is the optimistic one-sided path; ok is false on fallback.
func (c *Client) pureRead(key []byte) (val []byte, ok bool, err error) {
	keyHash := kv.HashKey(key)
	tableRKey, poolBase := c.shardRKeysFor(keyHash)
	idx := int(keyHash % uint64(c.buckets))
	var entry kv.Entry
	found := false
	for probe := 0; probe < 4; probe++ {
		bucket := (idx + probe) % c.buckets
		raw, err := c.read(tableRKey, uint64(bucket*kv.EntrySize), kv.EntrySize)
		if err != nil {
			return nil, false, err
		}
		e := kv.DecodeEntry(raw)
		if e.KeyHash == 0 {
			return nil, false, ErrNotFound
		}
		if e.Free() {
			continue
		}
		if e.KeyHash == keyHash {
			entry, found = e, true
			break
		}
	}
	if !found || entry.Tombstone() || entry.Current() == 0 {
		return nil, false, nil
	}
	off, totalLen, _ := kv.UnpackLoc(entry.Current())
	obj, err := c.read(poolBase+uint32(entry.Mark()&1), off, totalLen)
	if err != nil {
		return nil, false, err
	}
	h := kv.DecodeHeader(obj)
	if h.Magic != kv.Magic || !h.Valid() || !h.Durable() {
		return nil, false, nil
	}
	if h.KLen != len(key) || string(obj[kv.KeyOffset():kv.KeyOffset()+h.KLen]) != string(key) {
		return nil, false, nil
	}
	vo := kv.ValueOffset(h.KLen)
	if vo+h.VLen > len(obj) {
		return nil, false, nil
	}
	return append([]byte(nil), obj[vo:vo+h.VLen]...), true, nil
}

// rpcRead is the RPC+one-sided fallback.
func (c *Client) rpcRead(key []byte) ([]byte, error) {
	resp, err := c.rpc(wire.Msg{Type: wire.TGet, Key: key})
	if err != nil {
		return nil, err
	}
	if resp.Status == wire.StNotFound {
		return nil, ErrNotFound
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: get status %d", resp.Status)
	}
	obj, err := c.read(resp.RKey, resp.Off, int(resp.Len))
	if err != nil {
		return nil, err
	}
	h := kv.DecodeHeader(obj)
	vo := kv.ValueOffset(h.KLen)
	if h.Magic != kv.Magic || vo+h.VLen > len(obj) {
		return nil, errors.New("tcpkv: corrupt object from server")
	}
	return append([]byte(nil), obj[vo:vo+h.VLen]...), nil
}

// ServerStats fetches the server's counters.
func (c *Client) ServerStats() (Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != wire.StOK {
		return Stats{}, fmt.Errorf("tcpkv: stats status %d", resp.Status)
	}
	var st Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return Stats{}, fmt.Errorf("tcpkv: stats decode: %w", err)
	}
	return st, nil
}

// ShardStats fetches per-shard server counters (one element per shard).
// Pre-sharding servers answer the unknown type with an error status, which
// surfaces as a normal error here.
func (c *Client) ShardStats() ([]Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TShardStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: shard stats status %d", resp.Status)
	}
	var st []Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return nil, fmt.Errorf("tcpkv: shard stats decode: %w", err)
	}
	return st, nil
}

// Metrics fetches the server's telemetry snapshot (per-shard per-op
// latency histograms, gauges, counters). Servers predating the TMetrics
// type answer with an error status, which surfaces as a normal error.
func (c *Client) Metrics() (obs.Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TMetrics})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Status != wire.StOK {
		return obs.Snapshot{}, fmt.Errorf("tcpkv: metrics status %d", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp.Value, &snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("tcpkv: metrics decode: %w", err)
	}
	return snap, nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.rpc(wire.Msg{Type: wire.TDel, Key: key})
	if err != nil {
		return err
	}
	if resp.Status == wire.StNotFound {
		return ErrNotFound
	}
	return nil
}
