package tcpkv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"efactory/internal/adapt"
	"efactory/internal/cluster"
	"efactory/internal/crc"
	"efactory/internal/hint"
	"efactory/internal/kv"
	"efactory/internal/obs"
	"efactory/internal/trace"
	"efactory/internal/wire"
)

// ErrNotFound is returned by Get/Delete for absent keys.
var ErrNotFound = errors.New("tcpkv: key not found")

// ErrServerFull is returned by Put when the pool is exhausted.
var ErrServerFull = errors.New("tcpkv: server pool full")

// DefaultPipelineDepth bounds how many RPCs a client keeps in flight on
// its pipelined channel unless SetPipelineDepth says otherwise.
const DefaultPipelineDepth = 16

// Client is a TCP-mode eFactory client implementing the client-active
// write scheme and the hybrid read scheme over two connections: a
// pipelined RPC channel that carries many requests in flight at once
// (sequence-tagged frames, demultiplexed by a reader goroutine) and a
// lock-step one-sided channel. Methods are safe for concurrent use;
// concurrent RPCs share the pipelined connection instead of queueing
// behind each other.
type Client struct {
	addr string

	// mu guards connection state, the retry policy, and the counters —
	// not op I/O, which proceeds concurrently on the pipe.
	mu        sync.Mutex
	retry     RetryPolicy       // zero value: single attempt, no deadlines
	jitter    func(int64) int64 // backoff random source; nil = process-wide (tests seed it)
	pipeDepth int
	gen       uint64 // bumped per reconnect; concurrent retriers share one redial
	pipe      *pipe
	osConn    net.Conn

	// osMu serializes the one-sided channel: its frames are lock-step
	// request/response (or a batched burst of them). osAck is the reused
	// ack-frame read buffer, guarded by osMu.
	osMu  sync.Mutex
	osAck []byte

	tableRKey    uint32 // shard 0's table rkey; shard s adds rkeysPerShard*s
	poolRKeyBase uint32 // shard 0's pools; shard s pool i is poolRKeyBase + rkeysPerShard*s + i
	buckets      int    // per shard
	shards       int

	// Hybrid disabled => every GET is an RPC (for comparison runs).
	// Configure before issuing concurrent ops.
	hybrid bool

	// hints is the client-side location/durability hint cache (nil unless
	// EnableHintCache was called). Like hybrid, configure before issuing
	// concurrent ops; the cache itself is internally synchronized.
	hints *hint.Cache

	// pred, when non-nil (EnableAdaptive), preemptively routes reads of
	// recently-written objects straight to RPC instead of wasting the
	// optimistic one-sided fetch on a value whose durability flag cannot
	// be set yet. Guarded by mu (the predictor itself is not
	// synchronized). Configure before issuing concurrent ops.
	pred *adapt.ReadPredictor

	// epoch is the cluster-map epoch stamped on routed requests (Token
	// field; 0 = unclustered, which every server accepts). Maintained by
	// SetClusterEpoch, which also bulk-invalidates the hint cache — a
	// hint learned under old placement must not survive a cutover.
	epoch atomic.Uint64

	// PureReads / FallbackReads / RPCReads mirror the simulation client's
	// path counters. Guarded by mu while ops are in flight; read them
	// quiesced.
	PureReads     int
	FallbackReads int
	RPCReads      int
	// BatchedGets counts GETs carried by GetBatch; HintedReads counts pure
	// reads whose probe walk was skipped by a hint-cache hit.
	BatchedGets int
	HintedReads int
	// AdaptivePreempts counts GETs the read predictor routed straight to
	// RPC (EnableAdaptive only).
	AdaptivePreempts int
	// Retries and Reconnects count recovery actions taken under the
	// client's RetryPolicy.
	Retries    int
	Reconnects int

	// tracer mints and retains request traces (nil unless EnableTracing
	// was called).
	tracer *trace.Tracer
}

// pipe is one pipelined RPC connection: a writer goroutine serializes
// sequence-tagged request frames onto the socket, and a reader goroutine
// demultiplexes responses back to the callers waiting on them by sequence
// number, so the connection carries up to depth RPCs in flight at once.
type pipe struct {
	conn    net.Conn
	timeout func() time.Duration // per-call bound, read at call time

	wq   chan pipeFrame
	done chan struct{}
	sem  chan struct{} // bounds in-flight calls to the pipeline depth

	mu      sync.Mutex
	pending map[uint32]chan pipeResult
	seq     uint32
	err     error
}

type pipeFrame struct {
	frame []byte // [len][seq][msg], fully encoded by the caller
}

type pipeResult struct {
	payload []byte  // response message bytes (after the seq echo)
	raw     *[]byte // pooled backing of payload; release via releaseResp
	err     error
}

// callSlot is one pooled RPC call context: the request-frame scratch the
// writer sends as-is (zero copies on the write side) and the reusable
// completion channel. Slots live in a package-level pool rather than on
// the pipe, so scratch reuse survives reconnect generations — a client
// that redials keeps its warmed buffers.
type callSlot struct {
	frame []byte
	ch    chan pipeResult
}

var callSlotPool = sync.Pool{New: func() any {
	return &callSlot{frame: make([]byte, 0, 512), ch: make(chan pipeResult, 1)}
}}

// begin resets the slot's frame to the 8-byte [len][seq] placeholder the
// pipe fills in at send time; the caller appends the encoded message.
func (cs *callSlot) begin() {
	var hdr [8]byte
	cs.frame = append(cs.frame[:0], hdr[:]...)
}

// releaseResp returns a response buffer received from a callSlot
// exchange to the frame pool. Callers must be done with every byte that
// aliases it (Msg.Key/Value from wire.Decode included).
func releaseResp(bp *[]byte) {
	if bp != nil {
		frameBufPool.Put(bp)
	}
}

func newPipe(conn net.Conn, depth int, timeout func() time.Duration) *pipe {
	if depth < 1 {
		depth = 1
	}
	p := &pipe{
		conn:    conn,
		timeout: timeout,
		wq:      make(chan pipeFrame, depth),
		done:    make(chan struct{}),
		sem:     make(chan struct{}, depth),
		pending: make(map[uint32]chan pipeResult),
	}
	go p.writer()
	go p.reader()
	return p
}

// writer owns the socket's write side. Frames are [len][seq][msg] with the
// length prefix covering the 4-byte sequence tag. Each write runs under
// the shared attemptDeadline discipline (arm, write, clear) — nothing
// further is owed on the write side until the next request, and a stale
// deadline would poison an idle connection.
func (p *pipe) writer() {
	for {
		select {
		case <-p.done:
			return
		case f := <-p.wq:
			// f.frame is the caller's slot scratch, already fully framed;
			// the caller keeps the slot checked out until its response
			// arrives (which the server cannot send before this Write
			// completes), so writing it directly is race-free and the
			// write side copies nothing.
			dl := attemptDeadline{set: p.conn.SetWriteDeadline, d: p.timeout()}
			if err := dl.guard(func() error {
				_, err := p.conn.Write(f.frame)
				return err
			}); err != nil {
				p.fail(err)
				return
			}
		}
	}
}

// reader demultiplexes responses to waiting callers. It reads with no
// deadline: an idle pipelined connection must be able to sit quietly
// between bursts without spuriously timing out. Timeliness is enforced
// per call in call(), where a caller that stops waiting kills the pipe.
func (p *pipe) reader() {
	for {
		bp := frameBufPool.Get().(*[]byte)
		raw, err := readFrameInto(p.conn, *bp)
		if err != nil {
			frameBufPool.Put(bp)
			p.fail(err)
			return
		}
		*bp = raw[:0] // keep any growth in the pooled backing
		if len(raw) < 4 {
			frameBufPool.Put(bp)
			p.fail(errors.New("tcpkv: short pipelined frame"))
			return
		}
		seq := binary.BigEndian.Uint32(raw)
		p.mu.Lock()
		ch := p.pending[seq]
		delete(p.pending, seq)
		p.mu.Unlock()
		if ch != nil {
			ch <- pipeResult{payload: raw[4:], raw: bp}
		} else {
			frameBufPool.Put(bp)
		}
	}
}

// fail marks the pipe dead exactly once: the socket closes (unblocking the
// reader and writer), every pending caller gets err, and future calls fail
// fast.
func (p *pipe) fail(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	p.err = err
	close(p.done)
	p.conn.Close()
	for seq, ch := range p.pending {
		delete(p.pending, seq)
		ch <- pipeResult{err: err}
	}
}

func (p *pipe) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *pipe) forget(seq uint32) {
	p.mu.Lock()
	delete(p.pending, seq)
	p.mu.Unlock()
}

// call issues one RPC from a prepared slot and waits for its response.
// cs.frame must hold the 8-byte [len][seq] placeholder (callSlot.begin)
// followed by the encoded message; call fills the placeholder. The
// sequence number is the call's identity on the shared connection: an op
// retried after a failure re-enters a fresh pipe under a fresh sequence,
// so acknowledged sequences are never replayed.
//
// clean reports whether the slot completed its exchange (a result —
// success or error — was received on cs.ch): only then may the caller
// return cs to the pool. On the timeout/shutdown paths the writer or
// reader may still touch the slot's frame or channel, so the slot must
// be abandoned to the GC.
func (p *pipe) call(cs *callSlot) (r pipeResult, clean bool) {
	select {
	case p.sem <- struct{}{}:
	case <-p.done:
		return pipeResult{err: p.failure()}, false
	}
	defer func() { <-p.sem }()

	p.mu.Lock()
	if p.err != nil {
		p.mu.Unlock()
		return pipeResult{err: p.err}, false
	}
	p.seq++
	seq := p.seq
	p.pending[seq] = cs.ch
	p.mu.Unlock()
	binary.BigEndian.PutUint32(cs.frame, uint32(len(cs.frame)-4))
	binary.BigEndian.PutUint32(cs.frame[4:], seq)

	select {
	case p.wq <- pipeFrame{frame: cs.frame}:
	case <-p.done:
		p.forget(seq)
		return pipeResult{err: p.failure()}, false
	}

	var expired <-chan time.Time
	if d := p.timeout(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		expired = t.C
	}
	select {
	case r := <-cs.ch:
		return r, true
	case <-expired:
		// This sequence has no waiter anymore; the connection can no
		// longer be trusted to stay in sync, so fail everything over
		// together and let the retry path redial.
		p.forget(seq)
		p.fail(os.ErrDeadlineExceeded)
		return pipeResult{err: os.ErrDeadlineExceeded}, false
	}
}

// dialLocked (re)establishes both channels. Callers hold c.mu.
func (c *Client) dialLocked() error {
	rpcConn, err := dialChannel(c.addr, chanRPCPipe)
	if err != nil {
		return err
	}
	osConn, err := dialChannel(c.addr, chanOneSided)
	if err != nil {
		rpcConn.Close()
		return err
	}
	c.pipe = newPipe(rpcConn, c.pipeDepth, c.callTimeout)
	c.osConn = osConn
	return nil
}

// callTimeout reads the current per-attempt timeout; the pipe consults it
// at call time so SetRetryPolicy applies to live connections.
func (c *Client) callTimeout() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry.Timeout
}

// Dial connects to a tcpkv server and performs the geometry handshake.
// The returned client performs no retries; see SetRetryPolicy.
func Dial(addr string) (*Client, error) {
	c := &Client{addr: addr, hybrid: true, pipeDepth: DefaultPipelineDepth}
	c.mu.Lock()
	err := c.dialLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, err := c.rpc(wire.Msg{Type: wire.THello})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpkv: handshake: %w", err)
	}
	c.tableRKey = resp.RKey
	c.poolRKeyBase = resp.Token
	c.buckets = int(resp.Len)
	c.shards = int(resp.Off)
	if c.shards <= 0 {
		c.shards = 1 // pre-sharding servers leave Off zero
	}
	if c.buckets <= 0 {
		c.Close()
		return nil, errors.New("tcpkv: bad handshake geometry")
	}
	return c, nil
}

// shardRKeysFor returns the table rkey and pool rkey base of the shard
// owning keyHash.
func (c *Client) shardRKeysFor(keyHash uint64) (table, poolBase uint32) {
	sh := uint32(cluster.ShardOf(keyHash, c.shards))
	return c.tableRKey + rkeysPerShard*sh, c.poolRKeyBase + rkeysPerShard*sh
}

// Close tears both connections down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pipe.fail(net.ErrClosed)
	return c.osConn.Close()
}

// SetHybridRead toggles the hybrid read scheme.
func (c *Client) SetHybridRead(on bool) { c.hybrid = on }

// SetClusterEpoch records the cluster-map epoch routed requests should
// carry. Forward-only; advancing it bulk-invalidates the hint cache,
// since every resident hint was learned under placement that may no
// longer hold.
func (c *Client) SetClusterEpoch(epoch uint64) {
	for {
		cur := c.epoch.Load()
		if epoch <= cur {
			return
		}
		if c.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	if c.hints != nil {
		c.hints.AdvanceEpoch(epoch)
	}
}

// ClusterEpoch returns the epoch routed requests currently carry.
func (c *Client) ClusterEpoch() uint64 { return c.epoch.Load() }

// wrongEpoch maps an StWrongEpoch response to the typed error routed
// clients dispatch on, recording the server's proven epoch.
func wrongEpoch(resp wire.Msg) error {
	return &cluster.WrongEpochError{Epoch: uint64(resp.Token)}
}

// SetRetryPolicy installs rp; ops issued afterwards retry transient
// transport failures (reconnecting between attempts) and bound each
// attempt with rp.Timeout.
func (c *Client) SetRetryPolicy(rp RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = rp
}

// SetPipelineDepth bounds how many RPCs the client keeps in flight on the
// pipelined channel (default DefaultPipelineDepth). The connection is
// re-established to apply the new depth, so call it quiesced: RPCs in
// flight on the old connection are failed.
func (c *Client) SetPipelineDepth(n int) error {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pipeDepth = n
	c.pipe.fail(net.ErrClosed)
	c.osConn.Close()
	if err := c.dialLocked(); err != nil {
		return err
	}
	c.gen++
	return nil
}

// reconnect replaces both channels with fresh ones — unless another caller
// already did: concurrent ops that observed a failure on the same
// connection generation share a single redial instead of dialing over each
// other. Geometry is not re-fetched: it is a property of the server's
// device layout, which a reconnect cannot change.
func (c *Client) reconnect(genSeen uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != genSeen {
		return c.gen, nil // another op's retry already reconnected
	}
	c.pipe.fail(net.ErrClosed)
	c.osConn.Close()
	if err := c.dialLocked(); err != nil {
		return c.gen, err
	}
	c.gen++
	c.Reconnects++
	return c.gen, nil
}

// rpc performs one request/response over the pipelined channel. Concurrent
// callers share the connection; responses demultiplex by sequence number.
// The decoded Msg may alias the response buffer, which is left to the GC —
// hot paths that can bound the response's lifetime use rpcShared instead.
func (c *Client) rpc(req wire.Msg) (wire.Msg, error) {
	m, _, err := c.rpcShared(&req)
	return m, err
}

// rpcShared is rpc for callers that finish with the response before
// their next operation: the returned Msg aliases the returned pooled
// buffer, which the caller gives back via releaseResp once every aliased
// byte (Key/Value) is dead. A nil buffer is safe to release.
func (c *Client) rpcShared(req *wire.Msg) (wire.Msg, *[]byte, error) {
	c.mu.Lock()
	p := c.pipe
	c.mu.Unlock()
	cs := callSlotPool.Get().(*callSlot)
	cs.begin()
	cs.frame = req.AppendEncode(cs.frame)
	r, clean := p.call(cs)
	if clean {
		callSlotPool.Put(cs)
	}
	if r.err != nil {
		releaseResp(r.raw)
		return wire.Msg{}, nil, r.err
	}
	m, err := wire.Decode(r.payload)
	if err != nil {
		releaseResp(r.raw)
		return wire.Msg{}, nil, err
	}
	return m, r.raw, nil
}

// osExchange writes the given one-sided frames back-to-back and then reads
// one response frame per request — the one-sided channel's doorbell batch.
// One attemptDeadline covers the whole exchange, same discipline as the
// pipelined channel's writer.
func (c *Client) osExchange(frames [][]byte) ([][]byte, error) {
	c.mu.Lock()
	conn := c.osConn
	dl := attemptDeadline{set: conn.SetDeadline, d: c.retry.Timeout}
	c.mu.Unlock()
	c.osMu.Lock()
	defer c.osMu.Unlock()
	var resps [][]byte
	err := dl.guard(func() error {
		for _, f := range frames {
			if err := writeFrame(conn, f); err != nil {
				return err
			}
		}
		resps = make([][]byte, len(frames))
		for i := range resps {
			r, err := readFrame(conn)
			if err != nil {
				return err
			}
			resps[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resps, nil
}

// osReadFrame encodes a one-sided READ of length bytes at (rkey, off).
func osReadFrame(rkey uint32, off uint64, length int) []byte {
	frame := make([]byte, 17)
	frame[0] = opRead
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], off)
	binary.BigEndian.PutUint32(frame[13:], uint32(length))
	return frame
}

// osWriteFrame encodes a one-sided WRITE of data at (rkey, off).
func osWriteFrame(rkey uint32, off uint64, data []byte) []byte {
	frame := make([]byte, 17+len(data))
	frame[0] = opWrite
	binary.BigEndian.PutUint32(frame[1:], rkey)
	binary.BigEndian.PutUint64(frame[5:], off)
	binary.BigEndian.PutUint32(frame[13:], uint32(len(data)))
	copy(frame[17:], data)
	return frame
}

// read performs a one-sided READ of length bytes at (rkey, off).
func (c *Client) read(rkey uint32, off uint64, length int) ([]byte, error) {
	resps, err := c.osExchange([][]byte{osReadFrame(rkey, off, length)})
	if err != nil {
		return nil, err
	}
	if len(resps[0]) < 1 || resps[0][0] != 1 {
		return nil, errors.New("tcpkv: one-sided read NAK")
	}
	return resps[0][1:], nil
}

// write performs a one-sided WRITE of data at (rkey, off).
func (c *Client) write(rkey uint32, off uint64, data []byte) error {
	bs := burstScratchPool.Get().(*burstScratch)
	bs.buf = osAppendWrite(bs.buf[:0], rkey, off, data)
	err := c.osWriteBurst(bs.buf, 1)
	burstScratchPool.Put(bs)
	return err
}

// writeBatch posts every WRITE frame before waiting on any completion.
func (c *Client) writeBatch(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	resps, err := c.osExchange(frames)
	if err != nil {
		return err
	}
	for _, r := range resps {
		if len(r) < 1 || r[0] != 1 {
			return errors.New("tcpkv: one-sided write NAK")
		}
	}
	return nil
}

// burstScratch is a pooled builder for pre-framed one-sided WRITE
// bursts; pooled package-wide so the warmed buffer survives reconnects.
type burstScratch struct{ buf []byte }

var burstScratchPool = sync.Pool{New: func() any {
	return &burstScratch{buf: make([]byte, 0, 4096)}
}}

// osAppendWrite appends one framed one-sided WRITE (length prefix
// included) to buf, so a doorbell burst becomes a single contiguous
// buffer written with one syscall.
func osAppendWrite(buf []byte, rkey uint32, off uint64, data []byte) []byte {
	var hdr [21]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(17+len(data)))
	hdr[4] = opWrite
	binary.BigEndian.PutUint32(hdr[5:], rkey)
	binary.BigEndian.PutUint64(hdr[9:], off)
	binary.BigEndian.PutUint32(hdr[17:], uint32(len(data)))
	buf = append(buf, hdr[:]...)
	return append(buf, data...)
}

// osWriteBurst writes a pre-framed burst of n one-sided WRITEs with one
// syscall and consumes one ack frame per write. The ack buffer is
// per-client scratch guarded by osMu.
func (c *Client) osWriteBurst(burst []byte, n int) error {
	if n == 0 {
		return nil
	}
	c.mu.Lock()
	conn := c.osConn
	dl := attemptDeadline{set: conn.SetDeadline, d: c.retry.Timeout}
	c.mu.Unlock()
	c.osMu.Lock()
	defer c.osMu.Unlock()
	return dl.guard(func() error {
		if _, err := conn.Write(burst); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			r, err := readFrameInto(conn, c.osAck)
			if err != nil {
				return err
			}
			c.osAck = r[:0]
			if len(r) < 1 || r[0] != 1 {
				return errors.New("tcpkv: one-sided write NAK")
			}
		}
		return nil
	})
}

func (c *Client) bump(field *int) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// EnableAdaptive turns on per-object adaptive hybrid reads: a read of an
// object written within the predictor's durability horizon skips the
// optimistic one-sided fetch (which would bounce off the unset
// durability flag) and goes straight to RPC. Off by default — figures
// and tests that pin the classic hybrid path stay bit-identical.
// Configure before issuing concurrent ops.
func (c *Client) EnableAdaptive() {
	c.pred = adapt.NewReadPredictor()
}

// predNotePut records a completed PUT with the read predictor.
func (c *Client) predNotePut(keyHash uint64) {
	if c.pred == nil {
		return
	}
	c.mu.Lock()
	c.pred.NotePut(keyHash)
	c.mu.Unlock()
}

// predPreempt asks the read predictor whether to skip the optimistic
// fetch for keyHash.
func (c *Client) predPreempt(keyHash uint64) bool {
	if c.pred == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pred.Preempt(keyHash)
}

// predObserve feeds a hybrid-read outcome (pure success or fallback)
// back to the predictor's horizon estimator.
func (c *Client) predObserve(pure bool) {
	if c.pred == nil {
		return
	}
	c.mu.Lock()
	if pure {
		c.pred.ObservePure()
	} else {
		c.pred.ObserveFallback()
	}
	c.mu.Unlock()
}

// Put stores value under key: checksum, allocation RPC, one-sided value
// write — no durability round trip (asynchronous durability).
func (c *Client) Put(key, value []byte) error {
	tc, t0 := c.beginTrace("put", kv.HashKey(key))
	err := c.putCtx(tc, key, value)
	c.endTrace(tc, t0, err)
	return err
}

// putCtx is Put's body under a caller-owned trace context (nil =
// untraced); ClusterClient threads its routed-op context through here.
func (c *Client) putCtx(tc *trace.Ctx, key, value []byte) error {
	tCRC := traceNow(tc)
	sum := crc.Checksum(value)
	tc.Add("client_crc", tCRC, traceNow(tc))
	return c.retrying(func() error {
		// A retried attempt redoes the allocation RPC: the previous
		// attempt's slot (if it was granted) is left torn and gets
		// invalidated by background verification.
		tRPC := traceNow(tc)
		req := wire.Msg{Type: wire.TPut, Trace: tc.ID(), Token: uint32(c.epoch.Load()), Crc: sum, Len: uint64(len(value)), Key: key}
		resp, raw, err := c.rpcShared(&req)
		tc.Add("alloc_rpc", tRPC, traceNow(tc))
		if err != nil {
			return err
		}
		// TPutResp carries scalars only — nothing aliases the buffer.
		releaseResp(raw)
		switch resp.Status {
		case wire.StOK:
		case wire.StFull:
			return ErrServerFull
		case wire.StWrongEpoch:
			return wrongEpoch(resp)
		default:
			return fmt.Errorf("tcpkv: put status %d", resp.Status)
		}
		c.noteLocation(key, resp.RKey, resp.Off, int(resp.Len), len(key), 0, false)
		c.predNotePut(kv.HashKey(key))
		tW := traceNow(tc)
		err = c.write(resp.RKey, resp.Off+uint64(kv.ValueOffset(len(key))), value)
		tc.Add("doorbell_write", tW, traceNow(tc))
		return err
	})
}

// PutBatch stores len(keys) key/value pairs with one multi-op allocation
// RPC and one burst of one-sided value writes, every frame posted before
// the first completion is awaited — the TCP analogue of a doorbell-batched
// WRITE chain. Completion semantics match Put: durability stays
// asynchronous, handled by the background verifier. The returned slice has
// one entry per op, in order: nil, ErrServerFull, or a transport error
// shared by every op the failure reached.
func (c *Client) PutBatch(keys, values [][]byte) []error {
	return c.PutBatchInto(keys, values, nil)
}

// PutBatchInto is PutBatch with a caller-owned error slice: when errs
// has the capacity it is resliced and returned, so a steady-state caller
// (a closed-loop load driver, a benchmark) reuses one slice for its
// whole run and the batch write path allocates nothing.
func (c *Client) PutBatchInto(keys, values [][]byte, errs []error) []error {
	if len(keys) != len(values) {
		panic("tcpkv: PutBatch keys/values length mismatch")
	}
	if cap(errs) >= len(keys) {
		errs = errs[:len(keys)]
	} else {
		errs = make([]error, len(keys))
	}
	if len(keys) == 0 {
		return errs
	}
	tc, t0 := c.beginTrace("put_batch", kv.HashKey(keys[0]))
	c.putBatchCtx(tc, keys, values, errs)
	ferr := error(nil)
	for i := 0; ferr == nil && i < len(errs); i++ {
		ferr = errs[i]
	}
	c.endTrace(tc, t0, ferr)
	return errs
}

// putBatchScratch holds one PutBatch call's reusable buffers: the op
// list, its encoded payload, the decoded grants, and the one-sided WRITE
// burst. Pooled package-wide, so the warmed buffers survive reconnects
// and concurrent batches each check out their own.
type putBatchScratch struct {
	ops    []wire.PutOp
	opsBuf []byte
	grants []wire.PutGrant
	wbuf   []byte
}

var putBatchScratchPool = sync.Pool{New: func() any { return &putBatchScratch{} }}

// putBatchCtx is PutBatch's body under a caller-owned trace context.
// errs must be len(keys) long; it is filled in place.
func (c *Client) putBatchCtx(tc *trace.Ctx, keys, values [][]byte, errs []error) {
	sc := putBatchScratchPool.Get().(*putBatchScratch)
	defer putBatchScratchPool.Put(sc)
	tCRC := traceNow(tc)
	ops := sc.ops[:0]
	for i := range keys {
		ops = append(ops, wire.PutOp{Crc: crc.Checksum(values[i]), VLen: len(values[i]), Key: keys[i]})
	}
	sc.ops = ops
	tc.Add("client_crc", tCRC, traceNow(tc))
	sc.opsBuf = wire.AppendPutOps(sc.opsBuf[:0], ops)
	req := wire.Msg{Type: wire.TPutBatch, Trace: tc.ID(), Value: sc.opsBuf}
	err := c.retrying(func() error {
		for i := range errs {
			errs[i] = nil // a retried attempt regrants every slot
		}
		req.Token = uint32(c.epoch.Load())
		tRPC := traceNow(tc)
		resp, raw, err := c.rpcShared(&req)
		tc.Add("alloc_rpc", tRPC, traceNow(tc))
		if err != nil {
			return err
		}
		if resp.Status == wire.StWrongEpoch {
			releaseResp(raw)
			return wrongEpoch(resp)
		}
		if resp.Status != wire.StOK {
			releaseResp(raw)
			return fmt.Errorf("tcpkv: put batch status %d", resp.Status)
		}
		grants, gerr := wire.DecodePutGrantsInto(resp.Value, sc.grants)
		if gerr == nil {
			sc.grants = grants
		}
		// Grants are scalar copies — the response buffer is now free.
		releaseResp(raw)
		if gerr != nil {
			return fmt.Errorf("tcpkv: malformed put batch response: %w", gerr)
		}
		if len(grants) != len(keys) {
			return fmt.Errorf("tcpkv: put batch returned %d grants for %d ops", len(grants), len(keys))
		}
		wbuf := sc.wbuf[:0]
		n := 0
		for i, g := range grants {
			switch g.Status {
			case wire.StOK:
				c.noteLocation(keys[i], g.RKey, g.Off, int(g.Len), len(keys[i]), 0, false)
				c.predNotePut(kv.HashKey(keys[i]))
				off := g.Off + uint64(kv.ValueOffset(len(keys[i])))
				wbuf = osAppendWrite(wbuf, g.RKey, off, values[i])
				n++
			case wire.StFull:
				errs[i] = ErrServerFull
			default:
				errs[i] = fmt.Errorf("tcpkv: put status %d", g.Status)
			}
		}
		sc.wbuf = wbuf
		tW := traceNow(tc)
		werr := c.osWriteBurst(wbuf, n)
		tc.Add("doorbell_write", tW, traceNow(tc))
		return werr
	})
	if err != nil {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = err
			}
		}
	}
}

// Get fetches key's value with the hybrid read scheme.
func (c *Client) Get(key []byte) ([]byte, error) {
	tc, t0 := c.beginTrace("get", kv.HashKey(key))
	out, err := c.getCtx(tc, key)
	c.endTrace(tc, t0, err)
	return out, err
}

// getCtx is Get's body under a caller-owned trace context.
func (c *Client) getCtx(tc *trace.Ctx, key []byte) ([]byte, error) {
	var out []byte
	err := c.retrying(func() error {
		if c.hybrid && c.predPreempt(kv.HashKey(key)) {
			// The object was written within the durability horizon: the
			// optimistic fetch would bounce, so spend the round trip on
			// the authoritative path directly.
			c.bump(&c.AdaptivePreempts)
			val, err := c.rpcRead(tc, key)
			if err != nil {
				return err
			}
			out = val
			return nil
		}
		if c.hybrid {
			if c.hints != nil {
				val, verdict, err := c.hintedRead(tc, key)
				if err != nil {
					return err
				}
				switch verdict {
				case hrHit:
					c.bump(&c.PureReads)
					c.predObserve(true)
					out = val
					return nil
				case hrFallback:
					c.bump(&c.FallbackReads)
					c.predObserve(false)
					val, err := c.rpcRead(tc, key)
					if err != nil {
						return err
					}
					out = val
					return nil
				}
				// hrMiss: no usable hint — run the probe walk below.
			}
			val, ok, err := c.pureRead(tc, key)
			if err != nil {
				return err
			}
			if ok {
				c.bump(&c.PureReads)
				c.predObserve(true)
				out = val
				return nil
			}
			c.bump(&c.FallbackReads)
			c.predObserve(false)
		} else {
			c.bump(&c.RPCReads)
		}
		val, err := c.rpcRead(tc, key)
		if err != nil {
			return err
		}
		out = val
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pureRead is the optimistic one-sided path; ok is false on fallback.
func (c *Client) pureRead(tc *trace.Ctx, key []byte) (val []byte, ok bool, err error) {
	keyHash := kv.HashKey(key)
	tableRKey, poolBase := c.shardRKeysFor(keyHash)
	idx := int(keyHash % uint64(c.buckets))
	var entry kv.Entry
	found := false
	slot := -1
	tProbe := traceNow(tc)
	for probe := 0; probe < 4; probe++ {
		bucket := (idx + probe) % c.buckets
		raw, err := c.read(tableRKey, uint64(bucket*kv.EntrySize), kv.EntrySize)
		if err != nil {
			return nil, false, err
		}
		e := kv.DecodeEntry(raw)
		if e.KeyHash == 0 {
			if c.epoch.Load() != 0 {
				// Clustered: an empty bucket may mean the key migrated away
				// and was purged, not that it is absent. Only the owning
				// server may conclude NotFound — fall back to the RPC path,
				// where a misroute surfaces as StWrongEpoch.
				return nil, false, nil
			}
			return nil, false, ErrNotFound
		}
		if e.Free() {
			continue
		}
		if e.KeyHash == keyHash {
			entry, found, slot = e, true, bucket
			break
		}
	}
	tc.Add("entry_probe", tProbe, traceNow(tc))
	if !found || entry.Tombstone() || entry.Current() == 0 {
		return nil, false, nil
	}
	off, totalLen, _ := kv.UnpackLoc(entry.Current())
	tObj := traceNow(tc)
	obj, err := c.read(poolBase+uint32(entry.Mark()&1), off, totalLen)
	tc.Add("object_read", tObj, traceNow(tc))
	if err != nil {
		return nil, false, err
	}
	h := kv.DecodeHeader(obj)
	if h.Magic != kv.Magic || !h.Valid() || !h.Durable() {
		return nil, false, nil
	}
	if h.KLen != len(key) || string(obj[kv.KeyOffset():kv.KeyOffset()+h.KLen]) != string(key) {
		return nil, false, nil
	}
	vo := kv.ValueOffset(h.KLen)
	if vo+h.VLen > len(obj) {
		return nil, false, nil
	}
	if c.hints != nil {
		c.hints.Insert(cluster.ShardOf(keyHash, c.shards), key, hint.Entry{
			Slot: slot, Pool: poolBase + uint32(entry.Mark()&1), Off: off, Len: totalLen,
			KLen: h.KLen, Seq: h.Seq, Durable: true,
		})
	}
	return append([]byte(nil), obj[vo:vo+h.VLen]...), true, nil
}

// rpcRead is the RPC+one-sided fallback.
func (c *Client) rpcRead(tc *trace.Ctx, key []byte) ([]byte, error) {
	tRPC := traceNow(tc)
	resp, err := c.rpc(wire.Msg{Type: wire.TGet, Trace: tc.ID(), Token: uint32(c.epoch.Load()), Key: key})
	tc.Add("get_rpc", tRPC, traceNow(tc))
	if err != nil {
		return nil, err
	}
	if resp.Status == wire.StNotFound {
		return nil, ErrNotFound
	}
	if resp.Status == wire.StWrongEpoch {
		return nil, wrongEpoch(resp)
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: get status %d", resp.Status)
	}
	tObj := traceNow(tc)
	obj, err := c.read(resp.RKey, resp.Off, int(resp.Len))
	tc.Add("object_read", tObj, traceNow(tc))
	if err != nil {
		return nil, err
	}
	h := kv.DecodeHeader(obj)
	vo := kv.ValueOffset(h.KLen)
	if h.Magic != kv.Magic || vo+h.VLen > len(obj) {
		return nil, errors.New("tcpkv: corrupt object from server")
	}
	// The server only grants durable versions, so the hint is warm for the
	// next optimistic read.
	c.noteLocation(key, resp.RKey, resp.Off, int(resp.Len), h.KLen, h.Seq, true)
	return append([]byte(nil), obj[vo:vo+h.VLen]...), nil
}

// ServerStats fetches the server's counters.
func (c *Client) ServerStats() (Stats, error) {
	resp, err := c.rpc(wire.Msg{Type: wire.TStats})
	if err != nil {
		return Stats{}, err
	}
	if resp.Status != wire.StOK {
		return Stats{}, fmt.Errorf("tcpkv: stats status %d", resp.Status)
	}
	var st Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return Stats{}, fmt.Errorf("tcpkv: stats decode: %w", err)
	}
	return st, nil
}

// ShardStats fetches per-shard server counters (one element per shard).
// Pre-sharding servers answer the unknown type with an error status, which
// surfaces as a normal error here.
func (c *Client) ShardStats() ([]Stats, error) {
	resp, err := c.rpc(wire.Msg{Type: wire.TShardStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: shard stats status %d", resp.Status)
	}
	var st []Stats
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return nil, fmt.Errorf("tcpkv: shard stats decode: %w", err)
	}
	return st, nil
}

// Metrics fetches the server's telemetry snapshot (per-shard per-op
// latency histograms, gauges, counters). Servers predating the TMetrics
// type answer with an error status, which surfaces as a normal error.
func (c *Client) Metrics() (obs.Snapshot, error) {
	resp, err := c.rpc(wire.Msg{Type: wire.TMetrics})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Status != wire.StOK {
		return obs.Snapshot{}, fmt.Errorf("tcpkv: metrics status %d", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp.Value, &snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("tcpkv: metrics decode: %w", err)
	}
	return snap, nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	tc, t0 := c.beginTrace("del", kv.HashKey(key))
	err := c.delCtx(tc, key)
	c.endTrace(tc, t0, err)
	return err
}

// delCtx is Delete's body under a caller-owned trace context.
func (c *Client) delCtx(tc *trace.Ctx, key []byte) error {
	var st delRetryState
	return c.delCtxState(tc, key, &st)
}

// delCtxState runs the DELETE with caller-owned at-least-once state, so
// a routed caller re-trying against a different instance after a
// failover keeps the ambiguity accumulated here (a DEL acked nowhere but
// applied somewhere must map a later not-found to success).
func (c *Client) delCtxState(tc *trace.Ctx, key []byte, st *delRetryState) error {
	c.dropHint(key)
	return c.retrying(func() error {
		tRPC := traceNow(tc)
		resp, err := c.rpc(wire.Msg{Type: wire.TDel, Trace: tc.ID(), Token: uint32(c.epoch.Load()), Key: key})
		tc.Add("del_rpc", tRPC, traceNow(tc))
		if err != nil {
			st.noteUnknown()
			return err
		}
		switch resp.Status {
		case wire.StWrongEpoch:
			return wrongEpoch(resp)
		case wire.StNotFound:
			return st.mapNotFound()
		case wire.StOK:
			return nil
		default:
			// The server applied the delete locally but could not
			// acknowledge it (e.g. the tombstone missed its replication
			// quorum): outcome unknown cluster-wide, retry elsewhere.
			st.noteUnknown()
			return fmt.Errorf("%w: del status %d", ErrRetryable, resp.Status)
		}
	})
}
