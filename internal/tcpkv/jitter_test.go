package tcpkv

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"efactory/internal/nvm"
)

// TestJitteredBackoffDeterministic pins the decorrelated-jitter schedule:
// a seeded source reproduces the exact delay sequence, every delay stays
// within [base, max], and the schedule actually spreads instead of
// doubling in lock-step (the thundering-herd bug this replaced).
func TestJitteredBackoffDeterministic(t *testing.T) {
	const base, max = 2 * time.Millisecond, 50 * time.Millisecond
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		intn := func(n int64) int64 { return rng.Int63n(n) }
		out := make([]time.Duration, 0, 12)
		d := base
		for i := 0; i < 12; i++ {
			d = jitteredBackoff(d, base, max, intn)
			out = append(out, d)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < base || a[i] > max {
			t.Fatalf("step %d delay %v outside [%v, %v]", i, a[i], base, max)
		}
	}
	distinct := make(map[time.Duration]bool)
	for _, d := range a {
		distinct[d] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("schedule barely varies: %v", a)
	}
	c := seq(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestJitteredBackoffBounds pins the degenerate cases: no base keeps the
// previous delay (jitter disabled), and a huge previous delay still draws
// within [base, max] — the cap clamps, never the other way around.
func TestJitteredBackoffBounds(t *testing.T) {
	if d := jitteredBackoff(9*time.Millisecond, 0, 0, nil); d != 9*time.Millisecond {
		t.Fatalf("zero base must keep prev, got %v", d)
	}
	rng := rand.New(rand.NewSource(1))
	intn := func(n int64) int64 { return rng.Int63n(n) }
	for i := 0; i < 64; i++ {
		d := jitteredBackoff(time.Second, 2*time.Millisecond, 10*time.Millisecond, intn)
		if d < 2*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("draw %v outside [base, max]", d)
		}
	}
}

// TestRetryingDrawsJitteredBackoff pins that the client's retry loop
// consults the injected random source once per backed-off retry — the
// loop really runs the decorrelated schedule, not a silent doubling.
func TestRetryingDrawsJitteredBackoff(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{Attempts: 4, Backoff: time.Microsecond, MaxBackoff: 5 * time.Microsecond})
	draws := 0
	c.mu.Lock()
	c.jitter = func(n int64) int64 {
		draws++
		if n <= 0 {
			t.Fatalf("jitter span must be positive, got %d", n)
		}
		return 0
	}
	c.mu.Unlock()
	if err := c.retrying(func() error { return io.EOF }); err == nil {
		t.Fatal("retrying reported success though every attempt failed")
	}
	if draws != 3 {
		t.Fatalf("jitter drawn %d times, want one per backed-off retry (3)", draws)
	}
}
