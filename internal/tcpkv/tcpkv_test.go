package tcpkv

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"efactory/internal/nvm"
	"efactory/internal/wire"
)

// startServer spins a server on a loopback listener.
func startServer(t *testing.T, dev nvm.Device, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func smallConfig() Config {
	return Config{
		Buckets:       1024,
		PoolSize:      4 << 20,
		VerifyTimeout: raceScale(20 * time.Millisecond),
		BGInterval:    100 * time.Microsecond,
	}
}

// raceScale stretches a wall-clock timeout when the race detector is
// compiled in: the instrumented build runs the client-active write path
// an order of magnitude slower, and a VerifyTimeout sized for normal
// builds then invalidates writes that are merely slow, not torn.
func raceScale(d time.Duration) time.Duration {
	if raceEnabled {
		return d * 20
	}
	return d
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		val := bytes.Repeat([]byte{byte(i + 1)}, 100+i*25)
		if err := cl.Put(key, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get %d: wrong value", i)
		}
	}
	if err := cl.Delete([]byte("key-0")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("key-0")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
	if _, err := cl.Get([]byte("never")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}

func TestHybridReadTurnsPure(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Give the background verifier time to persist.
	time.Sleep(20 * time.Millisecond)
	before := cl.PureReads
	if _, err := cl.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if cl.PureReads != before+1 {
		t.Fatalf("read did not take the pure path: pure=%d fallback=%d",
			cl.PureReads, cl.FallbackReads)
	}
}

func TestConcurrentClients(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	const clients = 6
	const perClient = 40
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				key := []byte(fmt.Sprintf("c%d-k%d", ci, i))
				val := bytes.Repeat([]byte{byte(ci*10 + i%10 + 1)}, 64)
				if err := cl.Put(key, val); err != nil {
					errs <- fmt.Errorf("put: %w", err)
					return
				}
				got, err := cl.Get(key)
				if err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				if !bytes.Equal(got, val) {
					errs <- fmt.Errorf("client %d wrong value for %s", ci, key)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRestartRecoversDurableData(t *testing.T) {
	cfg := smallConfig()
	path := filepath.Join(t.TempDir(), "store.nvm")
	dev, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, dev, cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string][]byte{}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("persist-%d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 200)
		values[k] = v
		if err := cl.Put([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	// Reads force durability even if the verifier has not caught up.
	for k := range values {
		if _, err := cl.Get([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	srv.Close()
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same file.
	dev2, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		t.Fatal(err)
	}
	srv2, addr2 := startServer(t, dev2, cfg)
	if st := srv2.Stats(); st.Recovered != 20 {
		t.Fatalf("recovered %d keys, want 20", st.Recovered)
	}
	cl2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for k, v := range values {
		got, err := cl2.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get %s after restart: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("Get %s after restart: wrong value", k)
		}
	}
	// New writes work after recovery.
	if err := cl2.Put([]byte("persist-0"), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, err := cl2.Get([]byte("persist-0"))
	if err != nil || string(got) != "updated" {
		t.Fatalf("updated Get = %q, %v", got, err)
	}
}

func TestTornWriteRollsBackOnRestart(t *testing.T) {
	cfg := smallConfig()
	path := filepath.Join(t.TempDir(), "store.nvm")
	dev, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, dev, cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("k"), []byte("stable")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("k")); err != nil { // force durability
		t.Fatal(err)
	}
	// Torn update: allocate but never write the value, then crash (close
	// without flushing anything further).
	if _, err := cl.rpc(wire.Msg{Type: wire.TPut, Crc: 0xbad, Len: 64, Key: []byte("k")}); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Close()
	dev.Close()

	dev2, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		t.Fatal(err)
	}
	srv2, addr2 := startServer(t, dev2, cfg)
	if st := srv2.Stats(); st.RolledBack != 1 {
		t.Fatalf("RolledBack = %d, want 1 (stats %+v)", st.RolledBack, st)
	}
	cl2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	got, err := cl2.Get([]byte("k"))
	if err != nil || string(got) != "stable" {
		t.Fatalf("Get after torn-write restart = %q, %v; want stable", got, err)
	}
}

func TestOneSidedBoundsChecked(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.read(99, 0, 64); err == nil {
		t.Fatal("read with bogus rkey succeeded")
	}
	if _, err := cl.read(rkeyPoolBase, uint64(cfg.PoolSize-10), 64); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
}

func TestServerRejectsOversizedValueGracefully(t *testing.T) {
	cfg := smallConfig()
	cfg.PoolSize = 1 << 20
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	big := make([]byte, 400<<10)
	if err := cl.Put([]byte("a"), big); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("b"), big); err != nil {
		t.Fatal(err)
	}
	// A third 400 KiB object cannot fit a 1 MiB pool.
	if err := cl.Put([]byte("c"), big); !errors.Is(err, ErrServerFull) {
		t.Fatalf("err = %v, want ErrServerFull", err)
	}
}

func TestLogCleaningOverTCP(t *testing.T) {
	cfg := smallConfig()
	cfg.PoolSize = 256 << 10
	cfg.CleanThreshold = 0.25
	srv, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Writer: updates to a small key set, enough volume to trigger
	// cleaning several times. Reader: concurrent hybrid reads.
	latest := map[string]string{}
	var mu sync.Mutex
	stopReader := make(chan struct{})
	var readerErr error
	go func() {
		rcl, err := Dial(addr)
		if err != nil {
			readerErr = err
			return
		}
		defer rcl.Close()
		for {
			select {
			case <-stopReader:
				return
			default:
			}
			for i := 0; i < 8; i++ {
				k := fmt.Sprintf("k%d", i)
				got, err := rcl.Get([]byte(k))
				if errors.Is(err, ErrNotFound) {
					continue
				}
				if err != nil {
					readerErr = err
					return
				}
				if !bytes.HasPrefix(got, []byte("val-")) {
					readerErr = fmt.Errorf("garbage read for %s: %.16q", k, got)
					return
				}
			}
		}
	}()

	val := bytes.Repeat([]byte{'x'}, 2048)
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%d", i%8)
		v := append([]byte(fmt.Sprintf("val-%d-", i)), val...)
		if err := cl.Put([]byte(k), v); err != nil {
			if errors.Is(err, ErrServerFull) {
				time.Sleep(time.Millisecond) // cleaning catches up
				continue
			}
			t.Fatal(err)
		}
		mu.Lock()
		latest[k] = string(v)
		mu.Unlock()
	}
	close(stopReader)
	// Wait for any in-flight cleaning to finish.
	for i := 0; i < 1000 && srv.Cleaning(); i++ {
		time.Sleep(time.Millisecond)
	}
	if readerErr != nil {
		t.Fatalf("reader: %v", readerErr)
	}
	st := srv.Stats()
	if st.Cleanings == 0 {
		t.Fatal("threshold never triggered cleaning")
	}
	if st.CleanMoved == 0 || st.CleanDropped == 0 {
		t.Fatalf("cleaning did no work: %+v", st)
	}
	// All keys readable with their latest values after cleaning.
	for k, want := range latest {
		got, err := cl.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get %s after cleaning: %v", k, err)
		}
		if string(got) != want {
			t.Fatalf("Get %s = %.20q..., want %.20q...", k, got, want)
		}
	}
	t.Logf("cleanings: %d, moved: %d, dropped: %d", st.Cleanings, st.CleanMoved, st.CleanDropped)
}

func TestRestartAfterCleaningRecovers(t *testing.T) {
	cfg := smallConfig()
	cfg.PoolSize = 256 << 10
	path := filepath.Join(t.TempDir(), "store.nvm")
	dev, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, dev, cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{'y'}, 1024)
	for round := 0; round < 3; round++ {
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("p%d", i)
			v := append([]byte(fmt.Sprintf("r%d-", round)), val...)
			if err := cl.Put([]byte(k), v); err != nil {
				t.Fatal(err)
			}
		}
		if !srv.StartCleaning() {
			t.Fatal("StartCleaning refused")
		}
		for srv.Cleaning() {
			time.Sleep(time.Millisecond)
		}
	}
	// Force durability of the final round, then restart.
	for i := 0; i < 6; i++ {
		if _, err := cl.Get([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	srv.Close()
	dev.Close()

	dev2, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		t.Fatal(err)
	}
	srv2, addr2 := startServer(t, dev2, cfg)
	if st := srv2.Stats(); st.Recovered != 6 {
		t.Fatalf("recovered %d keys, want 6", st.Recovered)
	}
	cl2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 6; i++ {
		got, err := cl2.Get([]byte(fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatalf("Get p%d: %v", i, err)
		}
		if !bytes.HasPrefix(got, []byte("r2-")) {
			t.Fatalf("p%d = %.8q, want final round value", i, got)
		}
	}
}

func TestServerStatsRPC(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Put([]byte("k"), []byte("v"))
	cl.Get([]byte("k"))
	st, err := cl.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardedPutGetRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 4
	srv, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("shard-key-%d", i))
		val := bytes.Repeat([]byte{byte(i%250 + 1)}, 80+i*3)
		if err := cl.Put(key, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get %d: wrong value", i)
		}
	}
	// With 100 keys over 4 shards, every shard should have seen traffic.
	per, err := cl.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(per))
	}
	for i, s := range per {
		if s.Puts == 0 {
			t.Errorf("shard %d saw no puts", i)
		}
	}
	if st := srv.Stats(); st.Puts != 100 {
		t.Fatalf("aggregate Puts = %d, want 100", st.Puts)
	}
	// Hybrid reads go pure once the per-shard verifiers catch up.
	time.Sleep(30 * time.Millisecond)
	before := cl.PureReads
	for i := 0; i < 100; i++ {
		if _, err := cl.Get([]byte(fmt.Sprintf("shard-key-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if cl.PureReads == before {
		t.Error("no sharded read ever took the pure one-sided path")
	}
}

func TestShardedConcurrentClients(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 4
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	const clients = 6
	const perClient = 60
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < perClient; i++ {
				key := []byte(fmt.Sprintf("sc%d-k%d", ci, i))
				val := bytes.Repeat([]byte{byte(ci*10 + i%10 + 1)}, 96)
				if err := cl.Put(key, val); err != nil {
					errs <- fmt.Errorf("put: %w", err)
					return
				}
				got, err := cl.Get(key)
				if err != nil {
					errs <- fmt.Errorf("get: %w", err)
					return
				}
				if !bytes.Equal(got, val) {
					errs <- fmt.Errorf("client %d wrong value for %s", ci, key)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
