package tcpkv

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"efactory/internal/fault"
	"efactory/internal/nvm"
)

func TestPutBatchRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.BGBatch = 8
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const n = 24
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("batch-%02d", i))
		vals[i] = bytes.Repeat([]byte{byte(i + 1)}, 64+i*13)
	}
	for _, err := range cl.PutBatch(keys, vals) {
		if err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
	}
	for i := range keys {
		got, err := cl.Get(keys[i])
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("Get %d: wrong value", i)
		}
	}
}

// TestPutBatchDuplicateKeyLWW: a batch may carry several writes of one
// key; the ops are granted and applied in request order, so the last
// value in the batch must win — same last-writer-wins contract as a
// sequence of single PUTs.
func TestPutBatchDuplicateKeyLWW(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys := [][]byte{[]byte("dup"), []byte("other"), []byte("dup")}
	vals := [][]byte{[]byte("first-version-xxxxxxxx"), []byte("bystander"), []byte("last-version-yyyyyyyy")}
	for _, err := range cl.PutBatch(keys, vals) {
		if err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
	}
	got, err := cl.Get([]byte("dup"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, vals[2]) {
		t.Fatalf("duplicate key resolved to %q, want the batch's last write %q", got, vals[2])
	}
}

func TestPutBatchLengthMismatchPanics(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatch with mismatched slice lengths did not panic")
		}
	}()
	cl.PutBatch([][]byte{[]byte("a")}, nil)
}

// TestPipelinedLWWOrdering drives many goroutines through ONE pipelined
// connection: each owns a key and issues strictly ordered writes, with
// interleaved reads. Whatever the interleaving on the wire, each
// goroutine's final write must win on its key — the demultiplexed
// transport may reorder completions of INDEPENDENT ops but must not
// reorder one issuer's acknowledged sequence.
func TestPipelinedLWWOrdering(t *testing.T) {
	cfg := smallConfig()
	cfg.PipelineWorkers = 8
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const writers, gens = 8, 40
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []byte(fmt.Sprintf("writer-%d", w))
			for g := 0; g < gens; g++ {
				val := []byte(fmt.Sprintf("w%d-gen%03d", w, g))
				if err := cl.Put(key, val); err != nil {
					errc <- fmt.Errorf("writer %d put %d: %w", w, g, err)
					return
				}
				if g%5 == 0 {
					got, err := cl.Get(key)
					if err != nil {
						errc <- fmt.Errorf("writer %d get %d: %w", w, g, err)
						return
					}
					if !bytes.Equal(got, val) {
						errc <- fmt.Errorf("writer %d read back %q after writing %q", w, got, val)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for w := 0; w < writers; w++ {
		key := []byte(fmt.Sprintf("writer-%d", w))
		want := []byte(fmt.Sprintf("w%d-gen%03d", w, gens-1))
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("final get %d: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("writer %d: final value %q, want last write %q", w, got, want)
		}
	}
}

// TestIdleConnectionOutlivesCallTimeout pins the deadline-clearing
// contract: the per-call RetryPolicy timeout must apply to in-flight
// calls only. A pipelined connection sitting idle for longer than the
// timeout must NOT be torn down or spuriously expire the next call.
func TestIdleConnectionOutlivesCallTimeout(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{Attempts: 1, Timeout: 100 * time.Millisecond})

	if err := cl.Put([]byte("idle-key"), []byte("before-the-nap")); err != nil {
		t.Fatalf("put: %v", err)
	}
	time.Sleep(350 * time.Millisecond) // idle for > 3x the call timeout
	got, err := cl.Get([]byte("idle-key"))
	if err != nil {
		t.Fatalf("get after idling past the call timeout: %v", err)
	}
	if !bytes.Equal(got, []byte("before-the-nap")) {
		t.Fatalf("got %q", got)
	}
	if cl.Reconnects != 0 {
		t.Fatalf("idle period forced %d reconnects, want 0", cl.Reconnects)
	}
}

func TestSetPipelineDepth(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, depth := range []int{1, 32} {
		if err := cl.SetPipelineDepth(depth); err != nil {
			t.Fatalf("SetPipelineDepth(%d): %v", depth, err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				key := []byte(fmt.Sprintf("depth%d-%d", depth, g))
				if err := cl.Put(key, []byte("v")); err != nil {
					t.Errorf("put at depth %d: %v", depth, err)
					return
				}
				if _, err := cl.Get(key); err != nil {
					t.Errorf("get at depth %d: %v", depth, err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestTCPTortureSweepBatched reruns the crash-point sweep with the
// group-verified, group-flushed background path enabled: batching must
// not open any crash window the per-object path doesn't have.
func TestTCPTortureSweepBatched(t *testing.T) {
	cfg := tcpTortureConfig()
	cfg.BGBatch = 4
	points := 6
	if testing.Short() {
		points = 3
	}
	sr, err := fault.Sweep(RunTCPTorture, cfg, []uint64{1, 2}, points)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, v := range sr.Violations {
		t.Error(v)
	}
	if len(sr.Violations) == 0 && sr.Runs < 6 {
		t.Fatalf("sweep ran only %d runs", sr.Runs)
	}
}
