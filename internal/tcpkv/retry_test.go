package tcpkv

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"efactory/internal/fault"
	"efactory/internal/nvm"
)

// TestDroppedFramesSurfaceWithoutRetry pins the negative control: with
// response-frame drops injected and no retry policy, ops fail with a
// transient transport error (not a protocol outcome).
func TestDroppedFramesSurfaceWithoutRetry(t *testing.T) {
	cfg := smallConfig()
	cfg.NetFaults = &fault.NetPlan{DropEvery: 1, PartialFrame: true} // every response lost
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err == nil {
		// The handshake itself may survive only if its frame was not the
		// dropped one; with DropEvery=1 it never is, so Dial should fail.
		cl.Close()
		t.Fatal("Dial succeeded though every response frame is dropped")
	}
	if !transient(err) {
		t.Fatalf("expected a transient transport error, got %v", err)
	}
}

// TestClientRetriesThroughDrops is the satellite's core check: with every
// third response frame dropped (leaking a truncated prefix, so the client
// sees torn frames, not clean EOFs), a retrying client completes a full
// PUT/GET/DEL workload correctly.
func TestClientRetriesThroughDrops(t *testing.T) {
	cfg := smallConfig()
	cfg.NetFaults = &fault.NetPlan{DropEvery: 3, PartialFrame: true}
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)

	// Dial itself needs luck with DropEvery=3: retry it like an op.
	var cl *Client
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		cl, err = Dial(addr)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("dial never survived the drop schedule: %v", err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{
		Attempts:   6,
		Backoff:    500 * time.Microsecond,
		MaxBackoff: 4 * time.Millisecond,
		Timeout:    2 * time.Second,
	})

	for i := 0; i < 25; i++ {
		key := []byte(fmt.Sprintf("retry-%02d", i))
		val := []byte(fmt.Sprintf("value-%02d", i))
		if err := cl.Put(key, val); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(got) != string(val) {
			t.Fatalf("get %s: got %q want %q", key, got, val)
		}
	}
	for i := 0; i < 25; i += 3 {
		key := []byte(fmt.Sprintf("retry-%02d", i))
		if err := cl.Delete(key); err != nil {
			t.Fatalf("delete %s: %v", key, err)
		}
		if _, err := cl.Get(key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("get after delete %s: %v", key, err)
		}
	}
	if cl.Retries == 0 || cl.Reconnects == 0 {
		t.Fatalf("fault schedule never exercised the retry path: retries=%d reconnects=%d", cl.Retries, cl.Reconnects)
	}
}

// TestClientTimeoutRecoversFromStalledRead: every third one-sided read
// stalls longer than the per-attempt deadline; the client must time out,
// reconnect, and complete on a non-stalled attempt. (The period is
// coprime with the two reads a hybrid GET issues, so the stall drifts
// across attempts instead of pinning the same read every time.)
func TestClientTimeoutRecoversFromStalledRead(t *testing.T) {
	cfg := smallConfig()
	cfg.NetFaults = &fault.NetPlan{StallEvery: 3, StallFor: 150 * time.Millisecond}
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(RetryPolicy{
		Attempts: 8,
		Backoff:  500 * time.Microsecond,
		Timeout:  40 * time.Millisecond, // well under StallFor
	})

	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("stall-%02d", i))
		val := []byte(fmt.Sprintf("value-%02d", i))
		if err := cl.Put(key, val); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
		got, err := cl.Get(key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		if string(got) != string(val) {
			t.Fatalf("get %s: got %q want %q", key, got, val)
		}
	}
	if cl.Retries == 0 {
		t.Fatal("stall schedule never triggered a timeout retry")
	}
}

// TestDeleteRetryRule pins the at-least-once DELETE rule encoded once in
// delRetryState and shared by the single-connection retry loop and the
// routed client's cross-failover re-route: a fresh state surfaces
// not-found as ErrNotFound; once any attempt's outcome is unknown (the
// delete may have applied server-side), not-found maps to success — and
// the rule stays sticky across however many further attempts follow,
// including attempts against a different instance after a failover.
func TestDeleteRetryRule(t *testing.T) {
	var st delRetryState
	if err := st.mapNotFound(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fresh state must surface ErrNotFound, got %v", err)
	}
	st.noteUnknown()
	if err := st.mapNotFound(); err != nil {
		t.Fatalf("unknown outcome must map not-found to success, got %v", err)
	}
	if err := st.mapNotFound(); err != nil {
		t.Fatalf("rule must stay sticky across later attempts, got %v", err)
	}
}
