// Synchronous log mirroring and failover. When a placement group carries
// backups (cluster.Map.Backups), the primary generalizes the engine's
// flag⇒durable contract to flag⇒quorum-durable: every record that is
// about to receive a durability flag — a CRC-verified PUT version on the
// background/verify-on-demand path, or a DELETE tombstone on the ack
// path — is first streamed to the PG's backups over TReplAppend, and the
// flag (or the DELETE's StOK) is withheld until the record is durable on
// a quorum of the replica set.
//
// Failure handling is asymmetric, mirroring who holds authority:
//
//   - A backup that stops acking is DEMOTED: the primary installs an
//     epoch+1 map without it (cluster.Map.WithoutBackup), pushes it
//     best-effort, and keeps acking writes against the shrunk set.
//     Survivors all hold every flagged record, so a later promotion from
//     the shrunk set loses nothing. (If the primary also dies before the
//     demotion map propagates, a peer could still promote the demoted
//     backup — that is a double failure, outside the single-node-death
//     contract.)
//   - A primary that dies is replaced by promotion (PromoteFrom /
//     TPromote): a backup pulls the records its co-backups hold
//     (TReplPull — a write is only required on a quorum, not on every
//     backup), settles its mirrored tail (every pending version commits
//     or ages into invalidation, the same reconciliation a crash
//     restart applies), and installs an epoch+1 map owning the dead
//     primary's PGs. The epoch bump IS the failover protocol from the
//     clients' view: their next misrouted op draws StWrongEpoch and the
//     refetch converges on the promoted instance with zero client code.
//   - A DEPOSED primary (still alive, answered StWrongEpoch by a backup
//     holding a newer map) adopts that map and withholds the flag: no
//     new durable observations can be minted under a stale claim of
//     ownership, and SetClusterMap purges the PGs it lost so stale
//     one-sided readers miss and fall back to the routed path.
//
// Record ordering per backup is total: each backup has one sender mutex,
// one append in flight, and the synchronous ack means the backup applied
// the record before the next send starts. A record built before a
// concurrent DELETE (or newer PUT) could still be the last one sent, so
// every send is followed — under the same sender mutex — by a re-read of
// the key's authoritative state and a compensating append when it
// changed: the last record in any backup's order always reflects engine
// state current as of that send, so an acked DELETE can never be
// resurrected by a stale mirror and an acked PUT never erased by a stale
// tombstone.
package tcpkv

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"efactory/internal/cluster"
	"efactory/internal/kv"
	"efactory/internal/store"
	"efactory/internal/trace"
	"efactory/internal/wire"
)

// replPeer is one backup's ordered append channel: a persistent client
// connection plus the mutex that serializes sends (and the post-send
// compensation re-check) to it. The struct — and so the mutex — outlives
// connection resets, so ordering survives redials. The connection is an
// atomic pointer so Server.Close can sever an in-flight append without
// queueing behind the sender mutex.
type replPeer struct {
	mu sync.Mutex
	c  atomic.Pointer[Client]
}

// replOutcome classifies one backup's response to an append.
type replOutcome int

const (
	replAcked   replOutcome = iota // record durable on the backup
	replFailed                     // transport failure: demote the backup
	replDeposed                    // backup holds a newer map: stop flagging
)

// replMirror is the engine's Deps.Mirror hook: called (without the
// engine lock) for every version about to be flagged durable. The
// pre-mirror / post-mirror returns model the primary dying just before
// or just after the record traveled but before the flag persisted —
// torture harnesses only.
func (s *Server) replMirror(h any, rec store.ExportKey) bool {
	if s.replCrash != nil && s.replCrash("pre-mirror") {
		return false
	}
	ok := s.replicate(h, rec)
	if ok && s.replCrash != nil && s.replCrash("post-mirror") {
		return false
	}
	return ok
}

// mirrorDelete ships an acknowledged DELETE's tombstone to the PG's
// backups before the StOK travels. Returns false when the tombstone is
// not quorum-durable: the caller answers StError, leaving the op
// pending — the client retries, and the at-least-once retry mapping
// treats a not-found on a later attempt as success.
func (s *Server) mirrorDelete(h any, eng *store.Engine, key []byte) bool {
	if !s.replicatedPG(key) {
		return true
	}
	if s.replCrash != nil && s.replCrash("del-pre-mirror") {
		return false
	}
	ek, ok := eng.ExportOne(key)
	if !ok {
		// Entry already reclaimed: synthesize the tombstone that was
		// just observed to exist.
		ek = store.ExportKey{Key: append([]byte(nil), key...), Tombstone: true}
	}
	done := s.replicate(h, ek)
	if done && s.replCrash != nil && s.replCrash("del-post-mirror") {
		return false
	}
	return done
}

// replicatedPG reports whether key's placement group currently carries
// backups this instance must mirror to (one map read, no allocation —
// the fast path of every unreplicated DELETE).
func (s *Server) replicatedPG(key []byte) bool {
	s.clMu.RLock()
	m, name := s.clMap, s.clName
	s.clMu.RUnlock()
	if m == nil {
		return false
	}
	pg := cluster.PGOf(kv.HashKey(key), m.PGs)
	return pg < len(m.Assign) && m.Assign[pg] == name && len(m.BackupsFor(pg)) > 0
}

// replicate makes rec durable on a quorum of its PG's replica set. It
// reports whether the caller may persist a durability flag (or ack a
// DELETE): true when the record is quorum-durable — counting this
// instance, and counting demotions, which shrink the set rather than
// fail the quorum (a failure that cannot demote leaves the backup in
// the set, counted against the quorum) — false when a backup proved
// this instance is no longer the PG's primary under the newest epoch.
func (s *Server) replicate(h any, rec store.ExportKey) bool {
	s.clMu.RLock()
	m, name := s.clMap, s.clName
	s.clMu.RUnlock()
	if m == nil || len(rec.Key) == 0 {
		return true
	}
	pg := cluster.PGOf(kv.HashKey(rec.Key), m.PGs)
	if pg >= len(m.Assign) || m.Assign[pg] != name {
		// Not this instance's PG (deposed, or mid-migration): the flag
		// only vouches for local bytes routed clients can no longer
		// observe, so setting it is harmless and unblocks the verifier.
		return true
	}
	backups := m.BackupsFor(pg)
	if len(backups) == 0 {
		return true
	}
	s.replPending.Add(1)
	defer s.replPending.Add(-1)
	_, tc := trace.Unwrap(h)
	t0 := uint64(time.Now().UnixNano())
	_, eng := s.shardFor(rec.Key)
	acks, live := 1, 1
	for _, b := range backups {
		switch s.appendTo(eng, m, b, rec) {
		case replAcked:
			acks++
			live++
		case replDeposed:
			if tc != nil {
				tc.Add("repl_append", t0, uint64(time.Now().UnixNano()))
				tc.Mark("repl_deposed")
			}
			return false
		case replFailed:
			if !s.demoteBackup(pg, b) {
				// The set could not be shrunk (this instance was deposed
				// mid-replicate, or clustering vanished): the backup stays
				// a live replica the record did not reach, so it counts
				// against the quorum instead of out of it.
				live++
			}
		}
	}
	if tc != nil {
		tc.Add("repl_append", t0, uint64(time.Now().UnixNano()))
	}
	return acks >= live/2+1
}

// appendTo ships rec to the named backup and, under the same sender
// mutex, re-reads the key and ships a compensating record if a
// concurrent mutation changed it (see the package comment on ordering).
func (s *Server) appendTo(eng *store.Engine, m *cluster.Map, name string, rec store.ExportKey) replOutcome {
	addr, ok := m.AddrOf(name)
	if !ok {
		return replFailed
	}
	s.replMu.Lock()
	if s.replPeers == nil {
		s.replPeers = make(map[string]*replPeer)
	}
	p := s.replPeers[name]
	if p == nil {
		p = &replPeer{}
		s.replPeers[name] = p
	}
	s.replMu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c.Load() == nil {
		c, err := Dial(addr)
		if err != nil {
			s.replFailures.Add(1)
			return replFailed
		}
		c.SetRetryPolicy(replRetryPolicy())
		p.c.Store(c)
	}
	out := s.sendAppend(p, []store.ExportKey{rec}, m.Epoch)
	if out != replAcked {
		return out
	}
	cur, found := eng.ExportOne(rec.Key)
	if !found {
		cur = store.ExportKey{Key: rec.Key, Tombstone: true}
	}
	if replStateChanged(&rec, &cur) {
		if out := s.sendAppend(p, []store.ExportKey{cur}, m.Epoch); out != replAcked {
			return out
		}
	}
	return replAcked
}

// sendAppend performs one TReplAppend round trip on an established peer
// and classifies the outcome, adopting the backup's newer map on a
// wrong-epoch depose.
func (s *Server) sendAppend(p *replPeer, batch []store.ExportKey, epoch uint64) replOutcome {
	c := p.c.Load()
	if c == nil {
		return replFailed // Server.Close severed the connection
	}
	err := c.ReplAppend(batch, epoch)
	if err == nil {
		s.replAppends.Add(1)
		return replAcked
	}
	var we *cluster.WrongEpochError
	if errors.As(err, &we) {
		if nm, merr := c.ClusterMapRPC(); merr == nil {
			s.SetClusterMap(nm)
		}
		return replDeposed
	}
	s.replFailures.Add(1)
	c.Close()
	p.c.CompareAndSwap(c, nil)
	return replFailed
}

// replStateChanged reports whether the key's authoritative state moved
// since sent was built: a tombstone appeared or cleared, the cut
// sequence advanced, or a different newest version landed.
func replStateChanged(sent, cur *store.ExportKey) bool {
	return cur.Tombstone != sent.Tombstone ||
		cur.CutSeq != sent.CutSeq ||
		cur.NewestSeq() != sent.NewestSeq()
}

// replRetryPolicy is the transport policy for primary→backup append
// connections: one quick retry, tightly bounded attempts — a backup that
// cannot answer inside it is demoted rather than waited on.
func replRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 2, Backoff: 2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond, Timeout: 2 * time.Second}
}

// demoteBackup removes a dead backup from pg's replica set: epoch+1 map
// without it, installed locally BEFORE the caller acks anything against
// the shrunk set, then pushed best-effort (a peer that misses the push
// learns the epoch from wrong-epoch redirects). Serialized so two
// verifier goroutines demoting concurrently cannot revive each other's
// removal with a stale base map.
//
// It reports whether the backup is out of pg's replica set under a map
// this instance still owns (removed here, or already removed by another
// sender). False means the set could not be shrunk — this instance was
// deposed mid-replicate, and a non-owner must not strip a healthy backup
// from the real owner's set — so the failed backup still counts against
// the caller's quorum.
func (s *Server) demoteBackup(pg int, name string) bool {
	s.replDemoteMu.Lock()
	defer s.replDemoteMu.Unlock()
	s.clMu.RLock()
	m, self := s.clMap, s.clName
	s.clMu.RUnlock()
	if m == nil || pg >= len(m.Assign) || m.Assign[pg] != self {
		return false
	}
	present := false
	for _, b := range m.BackupsFor(pg) {
		if b == name {
			present = true
			break
		}
	}
	if !present {
		return true // another sender already demoted it
	}
	nm := m.WithoutBackup(pg, name)
	s.SetClusterMap(nm)
	s.replDemotions.Add(1)
	s.pushMapToPeers(nm, name)
	return true
}

// handleReplAppend ingests mirrored records as a backup. The sender's
// epoch rides in Token: a backup whose map is strictly newer refuses and
// answers StWrongEpoch with its own epoch — that is how a deposed
// primary (dead to the cluster, alive in the network) learns it must
// stop flagging writes durable. Ownership checks deliberately do not
// apply: a backup ingests PGs it does not own.
func (s *Server) handleReplAppend(m wire.Msg) wire.Msg {
	s.clMu.RLock()
	cm := s.clMap
	s.clMu.RUnlock()
	if cm != nil && cm.Epoch > uint64(m.Token) {
		s.wrongEpoch.Add(1)
		return wire.Msg{Type: wire.TReplAck, Status: wire.StWrongEpoch, Token: uint32(cm.Epoch)}
	}
	if s.replCrash != nil && s.replCrash("backup-append") {
		return wire.Msg{Type: wire.TReplAck, Status: wire.StError}
	}
	batch, err := decodeExportBatch(m.Value)
	if err != nil {
		return wire.Msg{Type: wire.TReplAck, Status: wire.StError}
	}
	for _, ek := range batch {
		eng := s.st.Shard(cluster.ShardFor(ek.Key, s.st.NumShards()))
		if eng.ImportKey(nil, ek) != store.StatusOK {
			return wire.Msg{Type: wire.TReplAck, Status: wire.StFull}
		}
		s.replIngested.Add(1)
	}
	return wire.Msg{Type: wire.TReplAck, Status: wire.StOK}
}

// handleReplPull exports every record of placement group Off for a
// promoting co-backup. One frame — replica reconciliation sets are
// backup-sized, not dataset-sized, and stay far under the frame cap.
func (s *Server) handleReplPull(m wire.Msg) wire.Msg {
	pg := int(m.Off)
	s.clMu.RLock()
	cm := s.clMap
	s.clMu.RUnlock()
	if cm == nil || pg < 0 || pg >= cm.PGs {
		return wire.Msg{Type: wire.TReplPullResp, Status: wire.StError}
	}
	accept := func(hash uint64) bool { return cluster.PGOf(hash, cm.PGs) == pg }
	var keys []store.ExportKey
	for i := 0; i < s.st.NumShards(); i++ {
		s.st.Shard(i).ExportMatching(accept, func(ek store.ExportKey) bool {
			keys = append(keys, ek)
			return true
		})
	}
	blob, err := encodeExportBatch(keys)
	if err != nil {
		return wire.Msg{Type: wire.TReplPullResp, Status: wire.StError}
	}
	return wire.Msg{Type: wire.TReplPullResp, Status: wire.StOK, Value: blob}
}

// handlePromote runs PromoteFrom for the dead instance named in Key.
func (s *Server) handlePromote(m wire.Msg) wire.Msg {
	ep, err := s.PromoteFrom(string(m.Key))
	if err != nil {
		return wire.Msg{Type: wire.TPromoteResp, Status: wire.StError, Value: []byte(err.Error())}
	}
	return wire.Msg{Type: wire.TPromoteResp, Status: wire.StOK, Token: uint32(ep)}
}

// PromoteFrom fails this instance over from a dead primary: it takes
// ownership of every PG the current map assigns to dead that lists this
// instance as a backup. Before the promotion map is installed the
// mirrored tail is reconciled — records acked by a quorum that did not
// include this backup are pulled from the surviving co-backups
// (TReplPull; imports are idempotent so the union is safe), then every
// pending version either commits durable or ages into invalidation
// (VerifyKeySettled), the same truncation a crash restart applies. Only
// then does the epoch+1 map make this instance answerable for the PGs.
// Returns the resulting epoch.
func (s *Server) PromoteFrom(dead string) (uint64, error) {
	s.migOne.Lock() // serialize against migrations and attach runs
	defer s.migOne.Unlock()
	s.clMu.RLock()
	m, self := s.clMap, s.clName
	s.clMu.RUnlock()
	if m == nil {
		return 0, errors.New("tcpkv: clustering not enabled")
	}
	if dead == self {
		return 0, errors.New("tcpkv: cannot promote from self")
	}
	if _, known := m.AddrOf(dead); !known {
		return 0, fmt.Errorf("tcpkv: unknown instance %q", dead)
	}
	take := make(map[int]bool)
	for pg, owner := range m.Assign {
		if owner != dead {
			continue
		}
		for _, b := range m.BackupsFor(pg) {
			if b == self {
				take[pg] = true
				break
			}
		}
	}
	if len(take) == 0 {
		return 0, fmt.Errorf("tcpkv: not a backup of any PG owned by %q", dead)
	}

	// Pull what the co-backups hold: a record only had to reach a
	// majority, and this backup may not have been in it. Best effort per
	// peer — a co-backup that is also down leaves exactly the records a
	// double failure would, which is outside the contract.
	for pg := range take {
		for _, b := range m.BackupsFor(pg) {
			if b == self || b == dead {
				continue
			}
			addr, ok := m.AddrOf(b)
			if !ok {
				continue
			}
			c, err := Dial(addr)
			if err != nil {
				continue
			}
			c.SetRetryPolicy(replRetryPolicy())
			if recs, err := c.ReplPull(pg); err == nil {
				for _, ek := range recs {
					eng := s.st.Shard(cluster.ShardFor(ek.Key, s.st.NumShards()))
					eng.ImportKey(nil, ek)
					s.replIngested.Add(1)
				}
			}
			c.Close()
		}
	}

	// Reconcile the mirrored tail: commit or truncate every pending
	// version before this instance can be asked about it.
	s.settlePGs(take, m.PGs)

	nm := m
	for pg := 0; pg < m.PGs; pg++ { // deterministic epoch order
		if take[pg] {
			nm = nm.WithPromotion(pg, self)
		}
	}
	s.SetClusterMap(nm)
	s.replPromotions.Add(1)
	s.pushMapToPeers(nm, dead)
	return nm.Epoch, nil
}

// settlePGs drives every key of the taken PGs to a settled durability
// state: durable, invalidated, tombstoned, or absent. Bounded by the
// verify window plus slack — a pending version that cannot settle by
// then is left to the background verifier, which applies the same
// commit-or-invalidate rule.
func (s *Server) settlePGs(take map[int]bool, pgs int) int {
	accept := func(hash uint64) bool { return take[cluster.PGOf(hash, pgs)] }
	var keys [][]byte
	for i := 0; i < s.st.NumShards(); i++ {
		s.st.Shard(i).ExportMatching(accept, func(ek store.ExportKey) bool {
			keys = append(keys, append([]byte(nil), ek.Key...))
			return true
		})
	}
	deadline := time.Now().Add(s.cfg.VerifyTimeout + 250*time.Millisecond)
	for _, k := range keys {
		eng := s.st.Shard(cluster.ShardFor(k, s.st.NumShards()))
		for !eng.VerifyKeySettled(nil, k) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	return len(keys)
}

// ReplCounters returns the replication-layer event counters: records
// shipped to backups, transport failures, backups demoted, promotions
// completed, and records ingested as a backup.
func (s *Server) ReplCounters() (appends, failures, demotions, promotions, ingested uint64) {
	return s.replAppends.Load(), s.replFailures.Load(), s.replDemotions.Load(),
		s.replPromotions.Load(), s.replIngested.Load()
}

// SetReplCrash installs the failover torture hook, consulted at each
// replication protocol point ("pre-mirror", "post-mirror",
// "del-pre-mirror", "del-post-mirror", "backup-append"); returning true
// makes the protocol behave as if the process died there. Call before
// traffic.
func (s *Server) SetReplCrash(fn func(point string) bool) { s.replCrash = fn }

// ReplicationSummary reports what one attach run copied.
type ReplicationSummary struct {
	PG           int    `json:"pg"`
	Target       string `json:"target"`
	Epoch        uint64 `json:"epoch"` // map epoch after the attach
	SnapshotKeys int    `json:"snapshot_keys"`
	DrainKeys    int    `json:"drain_keys"`
	DrainRounds  int    `json:"drain_rounds"`
	FinalKeys    int    `json:"final_keys"` // keys re-copied after the cutover
}

// ReplicatePG attaches target as a backup of pg: the PG's live records
// are streamed over (snapshot + drain rounds, exactly the migration
// machinery), then the epoch+1 map listing the backup is installed on
// THIS instance first — the primary is the gaining party of the mirror
// obligation, so from that instant every new durability flag waits on
// the backup's ack — and a final drain re-copies anything flagged solo
// before the install. Only then does the map travel to the target and
// the peers. No blocked window and no purge: the primary keeps serving
// and keeps its data; the only cutover is when flags start waiting.
//
// Dying mid-attach is safe at every point: until the map is installed
// locally, no map anywhere lists the target as a backup, so no failover
// can promote a half-copied replica.
func (s *Server) ReplicatePG(pg int, target string) (ReplicationSummary, error) {
	s.migOne.Lock()
	defer s.migOne.Unlock()

	s.clMu.RLock()
	m, self := s.clMap, s.clName
	s.clMu.RUnlock()
	sum := ReplicationSummary{PG: pg, Target: target}
	if m == nil {
		return sum, errors.New("tcpkv: clustering not enabled")
	}
	if pg < 0 || pg >= m.PGs {
		return sum, fmt.Errorf("tcpkv: no placement group %d (map has %d)", pg, m.PGs)
	}
	if m.Assign[pg] != self {
		return sum, fmt.Errorf("tcpkv: pg %d is owned by %q, not this instance", pg, m.Assign[pg])
	}
	if target == self {
		return sum, errors.New("tcpkv: target is the primary")
	}
	for _, b := range m.BackupsFor(pg) {
		if b == target {
			return sum, fmt.Errorf("tcpkv: %q is already a backup of pg %d", target, pg)
		}
	}
	addr, ok := m.AddrOf(target)
	if !ok {
		return sum, fmt.Errorf("tcpkv: unknown target instance %q", target)
	}
	tc, err := Dial(addr)
	if err != nil {
		return sum, fmt.Errorf("tcpkv: dial target: %w", err)
	}
	defer tc.Close()
	tc.SetRetryPolicy(DefaultRetryPolicy())

	accept := func(hash uint64) bool { return cluster.PGOf(hash, m.PGs) == pg }
	tracker := &migTracker{accept: accept, dirty: make(map[string]struct{})}
	s.mig.Store(tracker)
	defer s.mig.Store(nil)

	if err := s.migCheckpoint("repl-pre-snapshot"); err != nil {
		return sum, err
	}
	if sum.SnapshotKeys, err = s.exportSnapshot(tc, accept); err != nil {
		return sum, fmt.Errorf("tcpkv: replica snapshot: %w", err)
	}
	for round := 0; round < migDrainRounds; round++ {
		if err := s.migCheckpoint("repl-drain"); err != nil {
			return sum, err
		}
		dirty := tracker.take()
		if len(dirty) == 0 {
			break
		}
		sum.DrainRounds++
		n, err := s.exportDirty(tc, dirty)
		if err != nil {
			return sum, fmt.Errorf("tcpkv: replica drain round %d: %w", round, err)
		}
		sum.DrainKeys += n
	}

	if err := s.migCheckpoint("repl-pre-install"); err != nil {
		return sum, err
	}
	// Self-first cutover: the mirror obligation starts here. Every flag
	// set after this install waits on the backup; everything flagged
	// before it is covered by the final drain below (a drained key whose
	// export was still pending re-dirtied itself, so settling here ships
	// the durable state).
	nm := m.WithBackup(pg, target)
	s.SetClusterMap(nm)
	sum.Epoch = nm.Epoch
	if sum.FinalKeys, err = s.exportDirty(tc, tracker.take()); err != nil {
		return sum, fmt.Errorf("tcpkv: replica final drain: %w", err)
	}
	if err := s.migCheckpoint("repl-installed"); err != nil {
		return sum, err
	}
	if _, err := tc.SetClusterMapRPC(nm); err != nil {
		return sum, fmt.Errorf("tcpkv: installing map on backup: %w", err)
	}
	s.pushMapToPeers(nm, target)
	return sum, nil
}

// replAttach brings a newly joined instance up to the map's replication
// factor: every PG this instance primaries and that is still short of
// ReplicationFactor copies gains the joiner as a backup, one attach run
// at a time. Driven asynchronously from handleJoin.
func (s *Server) replAttach(target string) {
	for {
		s.clMu.RLock()
		m, self := s.clMap, s.clName
		s.clMu.RUnlock()
		if m == nil || m.ReplicationFactor < 2 {
			return
		}
		pg := -1
		for i, owner := range m.Assign {
			if owner != self || owner == target {
				continue
			}
			if 1+len(m.BackupsFor(i)) >= m.ReplicationFactor {
				continue
			}
			already := false
			for _, b := range m.BackupsFor(i) {
				if b == target {
					already = true
					break
				}
			}
			if !already {
				pg = i
				break
			}
		}
		if pg < 0 {
			return
		}
		if _, err := s.ReplicatePG(pg, target); err != nil {
			return // target unreachable or state moved; next join retries
		}
	}
}

// encodeExportBatch is decodeExportBatch's inverse (TReplPull payloads).
func encodeExportBatch(batch []store.ExportKey) ([]byte, error) {
	return json.Marshal(batch)
}
