package tcpkv

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"efactory/internal/nvm"
	"efactory/internal/obs"
)

// applyTraffic drives enough PUT/GET traffic through a client that every
// foreground histogram and the durability-lag machinery have data.
func applyTraffic(t *testing.T, cl *Client, n int) {
	t.Helper()
	val := bytes.Repeat([]byte{0xab}, 200)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("m-%d", i%64))
		if err := cl.Put(key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if _, err := cl.Get(key); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	// A DELETE always takes the RPC path, so the lookup section gets a
	// sample even when every GET above resolved purely one-sided (the
	// verifier can outpace a slow client, e.g. under the race detector).
	if err := cl.Put([]byte("m-del"), val); err != nil {
		t.Fatalf("put m-del: %v", err)
	}
	if err := cl.Delete([]byte("m-del")); err != nil {
		t.Fatalf("del m-del: %v", err)
	}
}

func TestMetricsRPC(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = 2
	srv, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	applyTraffic(t, cl, 200)

	snap, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(snap.Shards))
	}
	put := snap.MergedOp("put")
	if put.Count == 0 {
		t.Fatal("no put samples in wire snapshot")
	}
	// Over TCP the sink clock is the wall clock: whole-request latency
	// must be positive and ordered across quantiles.
	if !(put.Quantile(0.5) > 0 && put.Quantile(0.99) >= put.Quantile(0.5)) {
		t.Fatalf("put quantiles not sane: p50=%v p99=%v", put.Quantile(0.5), put.Quantile(0.99))
	}
	// GETs served over the RPC path time lookup sections too.
	if snap.MergedOp("lookup").Count == 0 {
		t.Fatal("no lookup samples in wire snapshot")
	}
	if _, ok := snap.GaugeValue("efactory_pool_occupancy"); !ok {
		t.Fatal("pool occupancy gauge missing")
	}
	if v, ok := snap.GaugeValue("efactory_pool_used_bytes"); !ok || v <= 0 {
		t.Fatalf("pool used bytes gauge = %v, %v", v, ok)
	}

	// The server-side registry agrees with what came over the wire.
	local := srv.Metrics().Snapshot()
	if local.MergedOp("put").Count < put.Count {
		t.Fatalf("server has fewer put samples (%d) than the wire snapshot (%d)",
			local.MergedOp("put").Count, put.Count)
	}
}

func TestMetricsHTTPEndpoint(t *testing.T) {
	cfg := smallConfig()
	cfg.BGInterval = time.Hour // park the verifier so durability lag stays visible
	srv, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	applyTraffic(t, cl, 100)

	hs := httptest.NewServer(obs.Handler(srv.Metrics()))
	defer hs.Close()

	get := func(path string) string {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	body := get("/metrics")
	for _, want := range []string{
		`efactory_op_latency_ns_bucket{shard="0",op="put",le="+Inf"}`,
		`efactory_op_latency_ns_count{shard="0",op="put"}`,
		`efactory_op_latency_ns_count{shard="0",op="lookup"}`,
		"efactory_durability_lag_bytes", "efactory_pool_occupancy",
		"efactory_ops_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	// With the verifier parked, every written byte is unverified backlog.
	var lag float64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `efactory_durability_lag_bytes{shard="0"}`) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &lag)
		}
	}
	if lag <= 0 {
		t.Fatalf("durability lag gauge = %g, want > 0 with the verifier parked", lag)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"buckets_ns"`) || !strings.Contains(vars, `"put"`) {
		t.Fatalf("/debug/vars payload unexpected: %.120s", vars)
	}
	trace := get("/debug/trace")
	if !strings.Contains(trace, "[") {
		t.Fatalf("/debug/trace payload unexpected: %.120s", trace)
	}
}
