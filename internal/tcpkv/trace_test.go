package tcpkv

import (
	"fmt"
	"testing"

	"efactory/internal/cluster"
	"efactory/internal/nvm"
)

// TestRoutedGetBatchSingleTraceAcrossInstances is the cluster tracing
// acceptance test: a routed multi-GET whose keys live on two instances
// must produce ONE client trace whose ID is retained by BOTH servers —
// the ID rides each per-instance TGetBatch frame, every server opens its
// own root span under it, and the TTraceDump RPC surfaces the joined
// picture, with spans stamped by the instance that recorded them.
func TestRoutedGetBatchSingleTraceAcrossInstances(t *testing.T) {
	cfg := clusterTestConfig()
	srvA, addrA := startClusterServer(t, "a", 4, cfg)
	srvB, addrB := startClusterServer(t, "b", 0, cfg)
	joinInstance(t, addrA, srvB)
	if _, err := srvA.MigratePG(1, "b"); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	cc, err := DialCluster(addrA, DefaultClusterClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	cc.EnableTracing(1, 0)

	// Pick keys until the batch spans both instances.
	var keys [][]byte
	haveA, haveB := 0, 0
	for i := 0; len(keys) < 8 || haveA == 0 || haveB == 0; i++ {
		if i > 4096 {
			t.Fatal("could not find keys for both instances")
		}
		k := []byte(fmt.Sprintf("span-key-%04d", i))
		if cluster.PGForKey(k, 4) == 1 {
			haveB++
		} else {
			haveA++
		}
		keys = append(keys, k)
	}
	for i, k := range keys {
		if err := cc.Put(k, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}
	_, errs := cc.GetBatch(keys)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("getbatch key %s: %v", keys[i], err)
		}
	}

	// One client-side trace for the whole routed batch.
	var gbID uint64
	gbTraces := 0
	for _, tr := range cc.Tracer().Dump(0) {
		if len(tr.Spans) > 0 && tr.Spans[0].Name == "get_batch" {
			gbID = tr.ID
			gbTraces++
		}
	}
	if gbTraces != 1 {
		t.Fatalf("client retained %d get_batch traces, want 1", gbTraces)
	}

	// Both instances must have retained spans under the SAME trace ID,
	// each stamped with its own identity — fetched over the TTraceDump
	// RPC exactly as efactory-cli slow does.
	for name, addr := range map[string]string{"a": addrA, "b": addrB} {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		trs, err := cl.TraceDump(gbID)
		cl.Close()
		if err != nil {
			t.Fatalf("trace dump from %s: %v", name, err)
		}
		if len(trs) == 0 {
			t.Fatalf("instance %s retained no spans for routed trace %x", name, gbID)
		}
		sawRoot := false
		for _, s := range trs[0].Spans {
			if s.Instance != name {
				t.Fatalf("instance %s span stamped %q: %+v", name, s.Instance, s)
			}
			if s.Name == "server_get_batch" {
				sawRoot = true
			}
		}
		if !sawRoot {
			t.Fatalf("instance %s has no server_get_batch root for trace %x: %+v", name, gbID, trs[0].Spans)
		}
	}
}

// TestServerTraceDumpEmptyWithoutTracing pins the untraced default: a
// client that never enabled tracing sends no trace IDs, so the server
// retains nothing.
func TestServerTraceDumpEmptyWithoutTracing(t *testing.T) {
	cfg := smallConfig()
	_, addr := startServer(t, nvm.New(cfg.DeviceSize()), cfg)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	trs, err := cl.TraceDump(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 0 {
		t.Fatalf("server retained %d traces from an untraced client", len(trs))
	}
}
