// Server side of the cluster placement layer. A tcpkv server becomes a
// cluster instance when it is given a name and an epoch-versioned
// cluster map (internal/cluster): from then on it is AUTHORITATIVE for
// ownership — every routed RPC op whose key falls outside the placement
// groups the map assigns to this instance is rejected with StWrongEpoch
// and the server's current epoch, and the client (whose cached map is
// advisory, like its hint cache) refetches and retries. A server whose
// map is nil behaves exactly like a pre-cluster server: no ownership
// checks, no new wire traffic, bit-identical behavior.
//
// Ownership applies to the RPC path only. One-sided READ/WRITE frames
// model RNIC DMA and cannot be checked per-key; they stay safe because
// migration purges moved entries from the source hash table, so a stale
// one-sided read misses (or fails the object checks) and the client
// falls back to the RPC path, where the wrong-epoch redirect happens.
package tcpkv

import (
	"encoding/json"
	"sync"

	"efactory/internal/cluster"
	"efactory/internal/kv"
	"efactory/internal/store"
	"efactory/internal/wire"
)

// EnableCluster names this server and installs the standalone seed map:
// one instance (this one, reachable at addr) owning all pgs placement
// groups at epoch 1. Call before Serve.
func (s *Server) EnableCluster(name, addr string, pgs int) {
	m := cluster.SingleInstance(name, addr, pgs)
	if s.cfg.Replicas > 1 {
		// The seed map carries the replication target; joiners are
		// attached as backups (replAttach) until every PG has
		// cfg.Replicas copies.
		m.ReplicationFactor = s.cfg.Replicas
	}
	s.clMu.Lock()
	s.clName = name
	s.clSelf = addr
	s.clMap = m
	s.clMu.Unlock()
	reg := s.st.Metrics()
	reg.SetInstance(name)
	reg.SetEpoch(1)
	s.registerClusterMetrics()
}

// SetInstanceName prepares a joining server: it has an identity but no
// map until the join response (or a TClusterMapSet push) installs one.
// With a nil map no ownership checks run, so a named-but-mapless server
// still behaves like an unclustered one. Call before Serve.
func (s *Server) SetInstanceName(name, addr string) {
	s.clMu.Lock()
	s.clName = name
	s.clSelf = addr
	s.clMu.Unlock()
	s.st.Metrics().SetInstance(name)
	s.registerClusterMetrics()
}

// InstanceName returns the cluster identity ("" when unclustered).
func (s *Server) InstanceName() string {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return s.clName
}

// ClusterMap returns the server's current map (nil when clustering is
// disabled or a joiner has not been given a map yet).
func (s *Server) ClusterMap() *cluster.Map {
	s.clMu.RLock()
	defer s.clMu.RUnlock()
	return s.clMap
}

// ClusterCounters returns the cluster-layer event counters: routed ops
// rejected with StWrongEpoch, keys shipped by migrations, and completed
// migrations. External harnesses (modelcheck, benches) assert on these —
// e.g. that a converged client stops drawing rejects in steady state.
func (s *Server) ClusterCounters() (wrongEpochRejects, keysMigrated, migrations uint64) {
	return s.wrongEpoch.Load(), s.migKeysMoved.Load(), s.migDone.Load()
}

// SetClusterMap installs m if it is strictly newer than the current map
// (or the server has none). It returns the epoch the server ends up at,
// which is also what a TClusterMapSet response carries — the pusher
// learns the server's view either way. Maps never move backwards.
//
// Installing a map that takes PGs away from this instance — a deposed
// primary learning it was failed over — also purges the lost groups'
// entries, asynchronously, after an opGate barrier has flushed every op
// approved under the old map: stale one-sided readers then miss here
// and fall back to the routed path, where the wrong-epoch redirect
// steers them to the new owner. (Migration sources purge synchronously
// inside their blocked window; this purge finds nothing there.)
func (s *Server) SetClusterMap(m *cluster.Map) uint64 {
	if m == nil || m.Validate() != nil {
		s.clMu.RLock()
		defer s.clMu.RUnlock()
		if s.clMap == nil {
			return 0
		}
		return s.clMap.Epoch
	}
	s.clMu.Lock()
	var lost []int
	if s.clMap == nil || m.Epoch > s.clMap.Epoch {
		if s.clMap != nil && s.clName != "" {
			for _, pg := range s.clMap.OwnedPGs(s.clName) {
				if pg < len(m.Assign) && m.Assign[pg] != s.clName {
					lost = append(lost, pg)
				}
			}
		}
		s.clMap = m
		// Structured trace events recorded from here on carry the new
		// epoch, so a ring dump shows exactly when the instance moved.
		s.st.Metrics().SetEpoch(m.Epoch)
	}
	ep := s.clMap.Epoch
	s.clMu.Unlock()
	if len(lost) > 0 {
		// Async: the caller may be a mutating handler holding the opGate
		// read side (a DELETE whose mirror append just got deposed), and
		// the barrier below takes the write side.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.opGate.Lock()
			s.opGate.Unlock() //nolint:staticcheck // barrier: old-map ops applied
			// Re-check each purge decision against the map that is current
			// NOW, not the one that triggered it: while this goroutine
			// waited on the barrier the instance may have been re-attached
			// as a replica of a lost PG (snapshot already ingested), and a
			// stale purge would leave a backup the map counts toward
			// quorum holding none of the PG's records.
			s.clMu.RLock()
			cur, name := s.clMap, s.clName
			s.clMu.RUnlock()
			set := make(map[int]bool, len(lost))
			for _, pg := range lost {
				if replicaOf(cur, name, pg) {
					continue
				}
				set[pg] = true
			}
			if len(set) == 0 {
				return
			}
			accept := func(hash uint64) bool { return set[cluster.PGOf(hash, m.PGs)] }
			for i := 0; i < s.st.NumShards(); i++ {
				s.st.Shard(i).PurgeMatching(accept)
			}
		}()
	}
	return ep
}

// replicaOf reports whether m lists name as a replica — primary or
// backup — of placement group pg.
func replicaOf(m *cluster.Map, name string, pg int) bool {
	if m == nil || pg < 0 || pg >= len(m.Assign) {
		return false
	}
	if m.Assign[pg] == name {
		return true
	}
	for _, b := range m.BackupsFor(pg) {
		if b == name {
			return true
		}
	}
	return false
}

// blockPG marks pg as refusing routed ops (the migration cutover
// window); unblockPG lifts it. While blocked, ops on the PG get
// StWrongEpoch at the CURRENT epoch — the client's map is not stale, so
// it backs off and retries instead of refetching, and the retry lands
// after cutover under the new epoch.
func (s *Server) blockPG(pg int) {
	s.clMu.Lock()
	if s.clBlocked == nil {
		s.clBlocked = make(map[int]bool)
	}
	s.clBlocked[pg] = true
	s.clMu.Unlock()
}

func (s *Server) unblockPG(pg int) {
	s.clMu.Lock()
	delete(s.clBlocked, pg)
	s.clMu.Unlock()
}

// unowned reports whether key must be rejected with StWrongEpoch, and
// at which epoch. With a nil map every key is owned (clustering off).
func (s *Server) unowned(key []byte) (epoch uint64, reject bool) {
	s.clMu.RLock()
	m := s.clMap
	name := s.clName
	var blocked bool
	if m != nil && len(s.clBlocked) > 0 {
		blocked = s.clBlocked[cluster.PGOf(kv.HashKey(key), m.PGs)]
	}
	s.clMu.RUnlock()
	if m == nil {
		return 0, false
	}
	if blocked || !m.Owns(name, kv.HashKey(key)) {
		s.wrongEpoch.Add(1)
		return m.Epoch, true
	}
	return 0, false
}

// unownedAny checks a batch: if ANY key is unowned the whole batch is
// rejected — batches are all-or-nothing on the wire, and a split batch
// would force per-op status plumbing through the grant arrays for an
// event that is rare (it only happens while a client's map is stale).
func (s *Server) unownedAny(keys [][]byte) (epoch uint64, reject bool) {
	s.clMu.RLock()
	m := s.clMap
	name := s.clName
	if m == nil {
		s.clMu.RUnlock()
		return 0, false
	}
	// The blocked-map lookups stay under the read lock: blockPG mutates
	// the map concurrently, and a map value is not safe to read through
	// a reference captured before the mutation.
	for _, k := range keys {
		h := kv.HashKey(k)
		if (len(s.clBlocked) > 0 && s.clBlocked[cluster.PGOf(h, m.PGs)]) || !m.Owns(name, h) {
			s.clMu.RUnlock()
			s.wrongEpoch.Add(1)
			return m.Epoch, true
		}
	}
	s.clMu.RUnlock()
	return 0, false
}

// migTracker records keys mutated while a migration is copying their
// placement group, so drain rounds can re-copy exactly what changed.
type migTracker struct {
	accept func(hash uint64) bool
	mu     sync.Mutex
	dirty  map[string]struct{}
}

// note records a mutated key if it belongs to the migrating PG.
func (t *migTracker) note(key []byte) {
	if !t.accept(kv.HashKey(key)) {
		return
	}
	t.mu.Lock()
	t.dirty[string(key)] = struct{}{}
	t.mu.Unlock()
}

// take swaps the dirty set out, leaving an empty one behind.
func (t *migTracker) take() map[string]struct{} {
	t.mu.Lock()
	d := t.dirty
	t.dirty = make(map[string]struct{})
	t.mu.Unlock()
	return d
}

// noteDirty is the write-path hook: one atomic load when no migration
// is running, one map insert when the key is in the PG being moved.
func (s *Server) noteDirty(key []byte) {
	if t := s.mig.Load(); t != nil {
		t.note(key)
	}
}

// handleClusterMap answers TClusterMap with the current map (StError
// when clustering is off — pre-cluster servers answer the same way via
// handle's default arm, so clients can't tell the difference).
func (s *Server) handleClusterMap() wire.Msg {
	m := s.ClusterMap()
	if m == nil {
		return wire.Msg{Type: wire.TClusterMapResp, Status: wire.StError}
	}
	return wire.Msg{Type: wire.TClusterMapResp, Status: wire.StOK, Token: uint32(m.Epoch), Value: m.Encode()}
}

// handleClusterMapSet adopts the offered map if strictly newer; the
// response Token carries the epoch the server ended at either way.
func (s *Server) handleClusterMapSet(m wire.Msg) wire.Msg {
	nm, err := cluster.DecodeMap(m.Value)
	if err != nil {
		return wire.Msg{Type: wire.TClusterMapSetResp, Status: wire.StError}
	}
	ep := s.SetClusterMap(nm)
	return wire.Msg{Type: wire.TClusterMapSetResp, Status: wire.StOK, Token: uint32(ep)}
}

// handleJoin admits a new instance: epoch+1 map with the joiner added
// (owning nothing), pushed best-effort to the other instances, returned
// to the joiner in the response.
func (s *Server) handleJoin(m wire.Msg) wire.Msg {
	name, addr := string(m.Key), string(m.Value)
	if name == "" || addr == "" {
		return wire.Msg{Type: wire.TJoinResp, Status: wire.StError}
	}
	s.clMu.Lock()
	if s.clMap == nil {
		s.clMu.Unlock()
		return wire.Msg{Type: wire.TJoinResp, Status: wire.StError}
	}
	nm := s.clMap.WithInstance(name, addr)
	s.clMap = nm
	s.clMu.Unlock()
	s.st.Metrics().SetEpoch(nm.Epoch)
	s.pushMapToPeers(nm, name)
	if nm.ReplicationFactor >= 2 {
		// Attach the joiner as a backup to under-replicated PGs this
		// instance primaries. Asynchronous: the joiner needs its join
		// response (and its listener) before it can ingest a snapshot.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.replAttach(name)
		}()
	}
	return wire.Msg{Type: wire.TJoinResp, Status: wire.StOK, Token: uint32(nm.Epoch), Value: nm.Encode()}
}

// pushMapToPeers offers nm to every other instance (best effort: a peer
// that is down learns the epoch from its clients' traffic instead —
// wrong-epoch redirects carry it). skip names an instance that gets the
// map by another channel (a joiner via its response, a migration target
// via the cutover push).
func (s *Server) pushMapToPeers(nm *cluster.Map, skip string) {
	s.clMu.RLock()
	self := s.clName
	s.clMu.RUnlock()
	for _, in := range nm.Instances {
		if in.Name == self || in.Name == skip {
			continue
		}
		if c, err := Dial(in.Addr); err == nil {
			c.SetClusterMapRPC(nm)
			c.Close()
		}
	}
}

// handleMigIngest imports a batch of exported keys into the local
// shards. Ownership checks deliberately do not apply: the target of a
// migration ingests a placement group it does not own yet.
func (s *Server) handleMigIngest(m wire.Msg) wire.Msg {
	batch, err := decodeExportBatch(m.Value)
	if err != nil {
		return wire.Msg{Type: wire.TMigIngestResp, Status: wire.StError}
	}
	for _, ek := range batch {
		eng := s.st.Shard(cluster.ShardFor(ek.Key, s.st.NumShards()))
		if eng.ImportKey(nil, ek) != store.StatusOK {
			return wire.Msg{Type: wire.TMigIngestResp, Status: wire.StFull}
		}
	}
	return wire.Msg{Type: wire.TMigIngestResp, Status: wire.StOK}
}

// registerClusterMetrics exposes the placement layer's migration
// counters through the store's telemetry registry (idempotent per
// server: the name is only set once, before Serve). The epoch gauge and
// wrong-epoch reject counter are first-class: NewServer registers them
// on every server, clustered or not.
func (s *Server) registerClusterMetrics() {
	reg := s.st.Metrics()
	lbl := map[string]string{"role": "server"}
	reg.AddCounter("efactory_cluster_migration_keys_total",
		"Keys copied out by migrations this instance sourced.", lbl,
		func() float64 { return float64(s.migKeysMoved.Load()) })
	reg.AddCounter("efactory_cluster_migrations_total",
		"Migrations this instance completed as the source.", lbl,
		func() float64 { return float64(s.migDone.Load()) })
	reg.AddGauge("efactory_repl_lag",
		"Mirror appends currently awaiting backup acks.", lbl,
		func() float64 { return float64(s.replPending.Load()) })
	reg.AddCounter("efactory_repl_appends_total",
		"Replicated commit records shipped to backups.", lbl,
		func() float64 { return float64(s.replAppends.Load()) })
	reg.AddCounter("efactory_repl_append_failures_total",
		"Mirror appends that failed at the transport (each demotes the backup).", lbl,
		func() float64 { return float64(s.replFailures.Load()) })
	reg.AddCounter("efactory_repl_demotions_total",
		"Backups dropped from replica sets after append failures.", lbl,
		func() float64 { return float64(s.replDemotions.Load()) })
	reg.AddCounter("efactory_repl_promotions_total",
		"Failover promotions completed on this instance.", lbl,
		func() float64 { return float64(s.replPromotions.Load()) })
	reg.AddCounter("efactory_repl_ingested_total",
		"Replicated commit records ingested as a backup.", lbl,
		func() float64 { return float64(s.replIngested.Load()) })
}

// decodeExportBatch parses a TMigIngest payload. The concrete type
// lives in internal/store (ExportKey); JSON keeps the wire layer free
// of a second hand-rolled codec for a control-plane path whose cost is
// dominated by the value bytes either way.
func decodeExportBatch(b []byte) ([]store.ExportKey, error) {
	var batch []store.ExportKey
	if err := json.Unmarshal(b, &batch); err != nil {
		return nil, err
	}
	return batch, nil
}
