package tcpkv

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"efactory/internal/cluster"
	"efactory/internal/fault"
	"efactory/internal/kv"
	"efactory/internal/nvm"
	"efactory/internal/store"
	"efactory/internal/trace"
)

// migTorturePGs is the placement-group count of the migration torture
// cluster and migTorturePG the group that migrates: the default 8-key
// hot set spreads over all four groups, so the moving group always has
// live traffic and the staying groups always prove non-interference.
const (
	migTorturePGs = 4
	migTorturePG  = 1
)

// migCrashCtl decides when the source "dies" during a migration torture
// run. Two modes: plan mode ties death to the fault.Plan's boundary trip
// (crash points land wherever device activity puts them), abort mode
// kills the source deterministically at the first visit of a named
// protocol checkpoint — so a sweep can visit every drain/cutover phase
// even though the protocol is fast relative to the workload. Either way,
// once died() reports true the workload stops and in-flight ops count as
// pending, exactly as a process death would leave them.
type migCrashCtl struct {
	plan    *fault.Plan
	abortAt string // "" = plan mode
	aborted atomic.Bool
}

func (c *migCrashCtl) died() bool { return c.plan.Tripped() || c.aborted.Load() }

func (c *migCrashCtl) hook(point string) bool {
	if c.abortAt != "" {
		if point == c.abortAt {
			c.aborted.Store(true)
			return true
		}
		return false
	}
	if c.plan.Tripped() {
		c.aborted.Store(true)
		return true
	}
	return false
}

// RunMigrationTorture executes one crash-point torture run of online
// migration: a two-instance cluster (file-backed source under a
// fault.Plan, healthy target) serves the standard mixed workload through
// a routed client while the source migrates one placement group to the
// target. Crash points land anywhere device boundaries do — including
// inside the snapshot, the drain rounds, the blocked window, and the
// cutover — and additionally abort the migration protocol itself at its
// next checkpoint, modeling the source process dying mid-protocol.
//
// After the run the source "restarts" (file reopen + recovery) and the
// durability oracle is checked against the cluster's own authority rule:
// if the cutover committed (the newest-epoch map reached the target),
// the migrated group's keys are read from the target; everything else is
// read from the recovered source. Zero tolerated outcomes differ from a
// plain single-node crash — the handoff must never lose an acknowledged
// write no matter where in the protocol the source dies.
func RunMigrationTorture(tc fault.Config) (fault.Result, error) {
	return runMigrationTorture(tc, "")
}

// RunMigrationAbortTorture is the deterministic variant: the source dies
// at the first visit of the named migration protocol checkpoint
// (pre-snapshot, drain, blocked, pre-cutover, cutover-committed,
// purged), with the device otherwise healthy. This pins every phase of
// the drain/cutover sequence regardless of where device boundaries fall.
func RunMigrationAbortTorture(tc fault.Config, abortAt string) (fault.Result, error) {
	return runMigrationTorture(tc, abortAt)
}

func runMigrationTorture(tc fault.Config, abortAt string) (fault.Result, error) {
	tc = tc.WithDefaults()
	if tc.VerifyTimeout < time.Millisecond {
		tc.VerifyTimeout = tcpVerifyTimeout
	}
	dir, err := os.MkdirTemp("", "efactory-migtorture-*")
	if err != nil {
		return fault.Result{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "src.img")

	plan := fault.NewPlan(tc.CrashAt)
	ctl := &migCrashCtl{plan: plan, abortAt: abortAt}
	cfg := Config{
		Buckets:        tc.Buckets,
		PoolSize:       tc.PoolSize,
		Shards:         tc.Shards,
		VerifyTimeout:  tc.VerifyTimeout,
		BGBatch:        tc.BGBatch,
		CleanThreshold: 0,
	}
	srcCfg := cfg
	srcCfg.FaultPlan = plan
	dev, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		return fault.Result{}, err
	}
	srvA, err := NewServer(dev, srcCfg)
	if err != nil {
		dev.Close()
		return fault.Result{}, err
	}
	srvA.migCrash = ctl.hook
	srvB, err := NewServer(nvm.New(cfg.DeviceSize()), cfg)
	if err != nil {
		srvA.Close()
		dev.Close()
		return fault.Result{}, err
	}
	defer srvB.Close()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srvA.Close()
		dev.Close()
		return fault.Result{}, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		srvA.Close()
		dev.Close()
		return fault.Result{}, err
	}
	go srvA.Serve(lnA)
	go srvB.Serve(lnB)
	srvA.EnableCluster("a", lnA.Addr().String(), migTorturePGs)
	srvB.SetInstanceName("b", lnB.Addr().String())
	seedCl, err := Dial(lnA.Addr().String())
	if err != nil {
		srvA.Close()
		dev.Close()
		return fault.Result{}, err
	}
	m, err := seedCl.JoinRPC("b", lnB.Addr().String())
	seedCl.Close()
	if err != nil {
		srvA.Close()
		dev.Close()
		return fault.Result{}, err
	}
	joinEpoch := srvB.SetClusterMap(m)

	ccfg := DefaultClusterClientConfig()
	// One transport attempt per routed try: a crash run must see each
	// op's first outcome. Route-level wrong-epoch retries stay on — they
	// are the redirect contract under test.
	ccfg.Retry = RetryPolicy{Attempts: 1, Timeout: 5 * time.Second}
	cc, err := DialCluster(lnA.Addr().String(), ccfg)
	if err != nil {
		srvA.Close()
		dev.Close()
		return fault.Result{}, err
	}

	// Trace every routed op (and the migration run itself, via Mint) so an
	// oracle violation prints the key's timeline across both instances.
	cc.EnableTracing(1, 0)
	ccTr, aTr, bTr := cc.Tracer(), srvA.Tracer(), srvB.Tracer()

	oracle := fault.NewOracle()
	oracle.SetSpanDump(func(key string) string {
		h := kv.HashKey([]byte(key))
		spans := append(ccTr.SpansForKey(h), aTr.SpansForKey(h)...)
		spans = append(spans, bTr.SpansForKey(h)...)
		if len(spans) == 0 {
			return ""
		}
		return trace.Timeline(spans)
	})
	rng := rand.New(rand.NewPCG(tc.Seed, 0x319_0c3a4))
	var violations []string
	migErr := make(chan error, 1)
	migStarted := false

	for op := 0; op < tc.Ops && !ctl.died(); op++ {
		if !migStarted && op == tc.Ops/4 {
			migStarted = true
			go func() {
				_, err := srvA.MigratePG(migTorturePG, "b")
				migErr <- err
			}()
		}
		if tc.CleanEvery > 0 && op > 0 && op%tc.CleanEvery == 0 {
			srvA.StartCleaning()
		}
		kind := rng.IntN(100)
		keyIdx := rng.IntN(tc.Keys)
		fresh := rng.IntN(5) == 0
		key := []byte(fmt.Sprintf("key-%02d", keyIdx))
		if kind < 60 && fresh {
			key = []byte(fmt.Sprintf("uniq-%04d", op))
		}
		switch {
		case kind < 60: // PUT through the routed client
			val := fault.WorkloadValue(tc.Seed, string(key), op, tc.ValueLen)
			err := cc.Put(key, val)
			switch {
			case err == nil && !ctl.died():
				oracle.PutAcked(key, val, true)
			case ctl.died():
				oracle.PutPending(key, val)
			}
		case kind < 85 && !tc.GetBatch: // GET
			got, err := cc.Get(key)
			if !ctl.died() && err == nil {
				if v := oracle.ObserveGet(key, got, true); v != "" {
					violations = append(violations, "live: "+v)
				}
			}
		case kind < 85: // batched multi-GET across both instances
			keys := [][]byte{key}
			for j := 1; j < fault.GetBatchFan; j++ {
				keys = append(keys, []byte(fmt.Sprintf("key-%02d", rng.IntN(tc.Keys))))
			}
			vals, errs := cc.GetBatch(keys)
			if !ctl.died() {
				for i := range keys {
					if errs[i] == nil {
						if v := oracle.ObserveGet(keys[i], vals[i], true); v != "" {
							violations = append(violations, "live: "+v)
						}
					}
				}
			}
		default: // DEL
			err := cc.Delete(key)
			switch {
			case err == nil && !ctl.died():
				oracle.DelAcked(key)
			case ctl.died() && !errors.Is(err, ErrNotFound):
				oracle.DelPending(key)
			}
		}
	}

	if migStarted {
		if merr := <-migErr; merr != nil && !errors.Is(merr, errMigrationAborted) {
			cc.Close()
			srvA.Close()
			dev.Close()
			return fault.Result{}, fmt.Errorf("migration failed outside a crash point: %w", merr)
		}
	}
	// The protocol's own commit point decides post-crash authority: the
	// cutover happened iff the newest-epoch map reached the target.
	committed := false
	if tm := srvB.ClusterMap(); tm != nil && tm.Epoch > joinEpoch {
		committed = true
	}

	res := fault.Result{
		Boundaries: plan.Boundaries(),
		Tripped:    plan.Tripped(),
		Stats:      srvA.Stats(),
	}

	// Source process restart: reopen the file; only flushed lines
	// survive. The target keeps running — it did not crash.
	cc.Close()
	srvA.Close()
	if err := dev.Close(); err != nil {
		return res, err
	}
	dev2, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		return res, err
	}
	defer dev2.Close()
	srv2, err := NewServer(dev2, cfg)
	if err != nil {
		return res, fmt.Errorf("source recovery failed: %w", err)
	}
	defer srv2.Close()

	engGet := func(srv *Server, key string) ([]byte, bool) {
		_, eng := srv.shardFor([]byte(key))
		gr := eng.Get(nil, []byte(key))
		if gr.Status != store.StatusOK {
			return nil, false
		}
		pool := eng.Pool(gr.Pool)
		hd := pool.Header(gr.Off)
		return pool.ReadValue(gr.Off, hd.KLen, hd.VLen), true
	}
	get := func(key string) ([]byte, bool) {
		if committed && cluster.PGOf(kv.HashKey([]byte(key)), migTorturePGs) == migTorturePG {
			return engGet(srvB, key)
		}
		return engGet(srv2, key)
	}
	violations = append(violations, oracle.Check(get)...)
	res.Violations = violations
	return res, nil
}
