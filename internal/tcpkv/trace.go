package tcpkv

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"efactory/internal/cluster"
	"efactory/internal/trace"
	"efactory/internal/wire"
)

// EnableTracing samples 1-in-sampleEvery of this client's ops into
// propagated request traces: the client records its own sections
// (checksum, RPCs, one-sided doorbell bursts) on the wall clock, the
// trace ID rides the frame trailer, and the server's engine sections
// join the same trace. Finished traces pass the tail-retention rules
// (root duration >= slowNS; slowNS 0 retains every sampled trace) into
// a bounded store read via Tracer. sampleEvery <= 0 disables tracing
// (the default): no IDs are minted and no wire bytes are added.
// Configure before issuing concurrent ops, like SetHybridRead.
func (c *Client) EnableTracing(sampleEvery int, slowNS uint64) {
	c.tracer = trace.NewTracer(sampleEvery, slowNS)
}

// Tracer returns the client's retained-trace store (nil when tracing
// was never enabled).
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// SetTraceRetention replaces the server's retained-trace store with one
// that tail-keeps only traces whose root section ran at least slowNS
// (marked traces — error, wrong-epoch, migration — are kept regardless;
// 0 keeps every submitted trace). Call before Serve.
func (s *Server) SetTraceRetention(slowNS uint64) {
	s.tracer = trace.NewTracer(0, slowNS)
}

// traceNow reads the wall clock only for traced ops, so the untraced
// path never pays the syscall.
func traceNow(tc *trace.Ctx) uint64 {
	if tc == nil {
		return 0
	}
	return uint64(time.Now().UnixNano())
}

// beginOp head-samples one op against t. On the sampled path it opens
// the root span (left un-ended until endOp) and returns the context and
// start time; on the common path it returns (nil, 0) and every
// downstream trace call is a no-op.
func beginOp(t *trace.Tracer, name string, keyHash uint64) (*trace.Ctx, uint64) {
	tc := trace.NewCtx(t.Sample())
	if tc == nil {
		return nil, 0
	}
	t0 := traceNow(tc)
	tc.Root(name, t0, 0)
	tc.SetRoot(0, "", keyHash)
	return tc, t0
}

// endOp closes the root span with the op's outcome and submits the
// trace for tail retention. Wrong-epoch redirects and errors mark the
// trace so the tail rules keep it regardless of duration.
func endOp(t *trace.Tracer, tc *trace.Ctx, t0 uint64, err error) {
	if tc == nil {
		return
	}
	end := traceNow(tc)
	outcome := "ok"
	var we *cluster.WrongEpochError
	switch {
	case err == nil:
	case errors.Is(err, ErrNotFound):
		outcome = "not_found"
	case errors.As(err, &we):
		outcome = "wrong_epoch"
		tc.Mark("wrong_epoch")
	default:
		outcome = "error"
		tc.Mark("error")
	}
	tc.SetRoot(end, outcome, 0)
	t.Submit(tc, end-t0)
}

func (c *Client) beginTrace(name string, keyHash uint64) (*trace.Ctx, uint64) {
	return beginOp(c.tracer, name, keyHash)
}

func (c *Client) endTrace(tc *trace.Ctx, t0 uint64, err error) {
	endOp(c.tracer, tc, t0, err)
}

// TraceDump fetches the server's retained traces over the TTraceDump
// RPC. id filters to one trace (0 = all).
func (c *Client) TraceDump(id uint64) ([]trace.Trace, error) {
	resp, err := c.rpc(wire.Msg{Type: wire.TTraceDump, Off: id})
	if err != nil {
		return nil, err
	}
	if resp.Status != wire.StOK {
		return nil, fmt.Errorf("tcpkv: trace dump status %d", resp.Status)
	}
	var ts []trace.Trace
	if err := json.Unmarshal(resp.Value, &ts); err != nil {
		return nil, fmt.Errorf("tcpkv: trace dump decode: %w", err)
	}
	return ts, nil
}
