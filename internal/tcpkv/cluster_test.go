package tcpkv

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"efactory/internal/cluster"
	"efactory/internal/kv"
	"efactory/internal/nvm"
	"efactory/internal/store"
)

// debugKeyState dumps everything the given servers know about key k —
// version chain, tombstone state, and every trace-ring event touching
// its hash — so a lost-write failure pinpoints which side dropped it.
func debugKeyState(srvs map[string]*Server, k []byte) string {
	h := kv.HashKey(k)
	var b strings.Builder
	fmt.Fprintf(&b, "key %q hash %x", k, h)
	for name, srv := range srvs {
		eng := srv.st.Shard(cluster.ShardFor(k, srv.st.NumShards()))
		m := srv.ClusterMap()
		fmt.Fprintf(&b, "\n  [%s] epoch=%d pg=%d", name, m.Epoch, cluster.PGOf(h, m.PGs))
		if ek, ok := eng.ExportOne(k); ok {
			fmt.Fprintf(&b, " tomb=%v cut=%d", ek.Tombstone, ek.CutSeq)
			for _, v := range ek.Versions {
				fmt.Fprintf(&b, " {seq=%d flags=%02x vlen=%d}", v.Seq, v.Flags, len(v.Value))
			}
		} else {
			fmt.Fprintf(&b, " absent")
		}
		for _, ev := range srv.st.Metrics().Ring().Dump() {
			if ev.KeyHash == h {
				fmt.Fprintf(&b, "\n    [%s] t=%d s%d %s/%s seq=%d", name, ev.TimeNS, ev.Shard, ev.Op, ev.Outcome, ev.Seq)
			}
		}
	}
	return b.String()
}

// startClusterServer listens first (the instance must advertise its
// address in the map), then serves. pgs > 0 makes it a standalone seed
// owning everything; pgs == 0 names it without a map (a joiner).
func startClusterServer(t *testing.T, name string, pgs int, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(nvm.New(cfg.DeviceSize()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if pgs > 0 {
		srv.EnableCluster(name, addr, pgs)
	} else {
		srv.SetInstanceName(name, addr)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func clusterTestConfig() Config {
	cfg := smallConfig()
	cfg.Shards = 2
	return cfg
}

// joinInstance admits joiner into seed's cluster via the wire and
// installs the returned map on the joiner, as cmd/efactory-server -join
// does.
func joinInstance(t *testing.T, seedAddr string, joiner *Server) *cluster.Map {
	t.Helper()
	c, err := Dial(seedAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.JoinRPC(joiner.InstanceName(), joiner.clSelf)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if ep := joiner.SetClusterMap(m); ep != m.Epoch {
		t.Fatalf("joiner at epoch %d after installing %d", ep, m.Epoch)
	}
	return m
}

func TestClusterMapJoinAndPropagation(t *testing.T) {
	cfg := clusterTestConfig()
	srvA, addrA := startClusterServer(t, "a", 8, cfg)
	srvB, _ := startClusterServer(t, "b", 0, cfg)

	ca, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	m, err := ca.ClusterMapRPC()
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 || len(m.OwnedPGs("a")) != 8 {
		t.Fatalf("seed map: epoch %d, a owns %d PGs", m.Epoch, len(m.OwnedPGs("a")))
	}

	jm := joinInstance(t, addrA, srvB)
	if jm.Epoch != 2 {
		t.Fatalf("post-join epoch = %d, want 2", jm.Epoch)
	}
	if len(jm.OwnedPGs("b")) != 0 {
		t.Fatalf("joiner owns %d PGs before any migration", len(jm.OwnedPGs("b")))
	}
	if got := srvA.ClusterMap().Epoch; got != 2 {
		t.Fatalf("seed stayed at epoch %d", got)
	}
	if got := srvB.ClusterMap().Epoch; got != 2 {
		t.Fatalf("joiner at epoch %d", got)
	}

	// Stale maps are refused: offering epoch 1 back leaves both at 2.
	if ep, err := ca.SetClusterMapRPC(m); err != nil || ep != 2 {
		t.Fatalf("stale map push: epoch %d err %v", ep, err)
	}
}

func TestWrongEpochRejectAndRoutedRetry(t *testing.T) {
	cfg := clusterTestConfig()
	srvA, addrA := startClusterServer(t, "a", 8, cfg)
	srvB, _ := startClusterServer(t, "b", 0, cfg)
	joinInstance(t, addrA, srvB)

	// A raw client frozen at the pre-migration epoch: the stale-cache
	// scenario a routed client's retry loop exists for.
	stale, err := Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()
	stale.SetClusterEpoch(srvA.ClusterMap().Epoch)
	key := []byte("routed-key")
	if err := stale.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	pg := cluster.PGForKey(key, 8)
	if _, err := srvA.MigratePG(pg, "b"); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// The stale client's RPC ops on the moved key must now be rejected
	// with the server's current epoch — never silently misapplied, never
	// NotFound.
	_, err = stale.Get(key)
	var we *cluster.WrongEpochError
	if !errors.As(err, &we) {
		t.Fatalf("stale get after migration: %v, want WrongEpochError", err)
	}
	if we.Epoch != srvA.ClusterMap().Epoch {
		t.Fatalf("reject carries epoch %d, server at %d", we.Epoch, srvA.ClusterMap().Epoch)
	}
	if err := stale.Put(key, []byte("v2")); !errors.As(err, &we) {
		t.Fatalf("stale put after migration: %v, want WrongEpochError", err)
	}
	if err := stale.Delete(key); !errors.As(err, &we) {
		t.Fatalf("stale delete after migration: %v, want WrongEpochError", err)
	}

	// A routed client rides the redirect: fetch map, observe the reject,
	// refetch, land on "b".
	cc, err := DialCluster(addrA, DefaultClusterClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	got, err := cc.Get(key)
	if err != nil || string(got) != "v1" {
		t.Fatalf("routed get after migration: %q, %v", got, err)
	}
	if err := cc.Put(key, []byte("v2")); err != nil {
		t.Fatalf("routed put after migration: %v", err)
	}
	if got, _ := cc.Get(key); string(got) != "v2" {
		t.Fatalf("routed reread: %q", got)
	}
	// The new value lives on b, not a.
	if srvB.Stats().KeysImported == 0 {
		t.Fatal("target imported nothing")
	}
}

func TestMigrationMovesStateBitIntact(t *testing.T) {
	cfg := clusterTestConfig()
	srvA, addrA := startClusterServer(t, "a", 4, cfg)
	srvB, _ := startClusterServer(t, "b", 0, cfg)
	joinInstance(t, addrA, srvB)

	cc, err := DialCluster(addrA, DefaultClusterClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Live values, overwrites (version chains), deletes (tombstones),
	// and delete+re-put (cut sequences).
	want := make(map[string][]byte)
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("mig-%03d", i)
		v1 := bytes.Repeat([]byte{byte(i + 1)}, 40+i)
		if err := cc.Put([]byte(k), v1); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
		want[k] = v1
		switch i % 4 {
		case 1: // overwrite
			v2 := bytes.Repeat([]byte{byte(i + 2)}, 30+i)
			if err := cc.Put([]byte(k), v2); err != nil {
				t.Fatal(err)
			}
			want[k] = v2
		case 2: // delete
			if err := cc.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
		case 3: // delete then re-put (cut sequence)
			if err := cc.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			v3 := bytes.Repeat([]byte{byte(i + 3)}, 20+i)
			if err := cc.Put([]byte(k), v3); err != nil {
				t.Fatal(err)
			}
			want[k] = v3
		}
	}

	var moved, purged int
	for pg := 0; pg < 4; pg++ {
		sum, err := srvA.MigratePG(pg, "b")
		if err != nil {
			t.Fatalf("migrate pg %d: %v", pg, err)
		}
		moved += sum.SnapshotKeys + sum.DrainKeys + sum.BlockedKeys
		purged += sum.Purged
	}
	if moved == 0 || purged == 0 {
		t.Fatalf("migration moved %d purged %d", moved, purged)
	}
	if got := srvA.ClusterMap().Epoch; got != 2+4 {
		t.Fatalf("epoch after 4 cutovers = %d, want 6", got)
	}
	if pgs := srvA.ClusterMap().OwnedPGs("b"); len(pgs) != 4 {
		t.Fatalf("b owns %v after full handoff", pgs)
	}

	// Every surviving key reads back through the routed client; deleted
	// keys stay deleted. The source is empty.
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("mig-%03d", i)
		got, err := cc.Get([]byte(k))
		if v, ok := want[k]; ok {
			if err != nil || !bytes.Equal(got, v) {
				t.Fatalf("get %s after migration: %v (len %d, want %d)", k, err, len(got), len(v))
			}
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted %s after migration: %v, want ErrNotFound", k, err)
		}
	}
	srcLeft := 0
	for i := 0; i < srvA.Store().NumShards(); i++ {
		srvA.Store().Shard(i).ExportMatching(nil, func(store.ExportKey) bool {
			srcLeft++
			return true
		})
	}
	if srcLeft != 0 {
		t.Fatalf("source still holds %d entries after full handoff", srcLeft)
	}
	if st := srvA.Stats(); st.KeysPurged == 0 {
		t.Fatal("source purged nothing")
	}
}

// TestClusterTxnRoutingAndCrossInstanceReject pins the routed
// transactional surface end to end: a commit whose keys all live on one
// instance routes there (riding the wrong-epoch refresh if the cached
// map is stale), and a key set straddling two instances is rejected
// whole with ErrTxnCrossInstance — no op of it is ever applied.
func TestClusterTxnRoutingAndCrossInstanceReject(t *testing.T) {
	cfg := clusterTestConfig()
	const pgs = 4
	const movedPG = 2
	srvA, addrA := startClusterServer(t, "a", pgs, cfg)
	srvB, _ := startClusterServer(t, "b", 0, cfg)
	joinInstance(t, addrA, srvB)

	// Partition a key universe by placement group: stayKeys remain on a,
	// movedKeys follow pg 2 to b after the migration.
	var stayKeys, movedKeys [][]byte
	for i := 0; len(stayKeys) < 2 || len(movedKeys) < 2; i++ {
		k := []byte(fmt.Sprintf("ctxn-%03d", i))
		switch cluster.PGForKey(k, pgs) {
		case movedPG:
			if len(movedKeys) < 2 {
				movedKeys = append(movedKeys, k)
			}
		default:
			if len(stayKeys) < 2 {
				stayKeys = append(stayKeys, k)
			}
		}
	}

	cc, err := DialCluster(addrA, DefaultClusterClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	stayVals := [][]byte{[]byte("stay-0"), []byte("stay-1")}
	id, errs := cc.TxnCommit(stayKeys, stayVals)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("pre-migration commit op %d: %v", i, e)
		}
	}
	if id == 0 {
		t.Fatal("pre-migration commit returned id 0")
	}
	// Seed the migrating pg so the cutover actually carries state; the
	// post-migration commit must then supersede this on b.
	if _, errs := cc.TxnCommit(movedKeys, [][]byte{[]byte("pre-0"), []byte("pre-1")}); firstErr(errs) != nil {
		t.Fatalf("seed commit: %v", firstErr(errs))
	}

	if _, err := srvA.MigratePG(movedPG, "b"); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// The client's cached map predates the cutover: this commit must ride
	// the wrong-epoch reject, refetch, and land on b.
	movedVals := [][]byte{[]byte("moved-0"), []byte("moved-1")}
	id2, errs := cc.TxnCommit(movedKeys, movedVals)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("post-migration commit op %d: %v", i, e)
		}
	}
	if id2 == 0 {
		t.Fatal("post-migration commit returned id 0")
	}
	if srvB.Stats().KeysImported == 0 {
		t.Fatal("migration moved nothing to b")
	}

	// Snapshot reads route per-instance and see each commit whole.
	for _, tc := range []struct {
		keys [][]byte
		vals [][]byte
	}{{stayKeys, stayVals}, {movedKeys, movedVals}} {
		got, rerrs := cc.TxnRead(tc.keys)
		for i := range tc.keys {
			if rerrs[i] != nil || !bytes.Equal(got[i], tc.vals[i]) {
				t.Fatalf("txn read %q: %q, %v (want %q)", tc.keys[i], got[i], rerrs[i], tc.vals[i])
			}
		}
	}

	// A set straddling both instances fails whole, typed, on commit and
	// on read — and applies nothing.
	mixed := [][]byte{stayKeys[0], movedKeys[0]}
	_, errs = cc.TxnCommit(mixed, [][]byte{[]byte("poison-a"), []byte("poison-b")})
	for i, e := range errs {
		if !errors.Is(e, ErrTxnCrossInstance) {
			t.Fatalf("cross-instance commit op %d: %v, want ErrTxnCrossInstance", i, e)
		}
	}
	if _, rerrs := cc.TxnRead(mixed); !errors.Is(rerrs[0], ErrTxnCrossInstance) || !errors.Is(rerrs[1], ErrTxnCrossInstance) {
		t.Fatalf("cross-instance read: %v / %v, want ErrTxnCrossInstance", rerrs[0], rerrs[1])
	}
	if got, err := cc.Get(stayKeys[0]); err != nil || !bytes.Equal(got, stayVals[0]) {
		t.Fatalf("key %q after rejected txn: %q, %v", stayKeys[0], got, err)
	}
	if got, err := cc.Get(movedKeys[0]); err != nil || !bytes.Equal(got, movedVals[0]) {
		t.Fatalf("key %q after rejected txn: %q, %v", movedKeys[0], got, err)
	}
}

// TestMigrationUnderLiveTraffic is the acceptance test: a two-instance
// cluster serving concurrent mixed traffic (Get/Put/Del/GetBatch/
// PutBatch through routed clients) while every placement group migrates
// a→b, with zero acknowledged-write loss and a client cache that
// converges to zero steady-state wrong-epoch rejects after cutover.
func TestMigrationUnderLiveTraffic(t *testing.T) {
	cfg := clusterTestConfig()
	// The verify window is the system's crash detector: a pending version
	// whose value has not landed within VerifyTimeout is treated as a
	// dead client's torn write and invalidated. The race detector's
	// scheduler can stall a perfectly healthy worker goroutine for tens
	// of milliseconds between its alloc RPC and its one-sided value
	// write, so the 20ms test default misclassifies live clients as
	// crashed ones and the oracle (rightly) reports the acked write as
	// lost. Size the window the way a deployment must: well above the
	// worst-case alloc-to-value-write latency.
	cfg.VerifyTimeout = 250 * time.Millisecond
	const pgs = 4
	srvA, addrA := startClusterServer(t, "a", pgs, cfg)
	srvB, _ := startClusterServer(t, "b", 0, cfg)
	joinInstance(t, addrA, srvB)

	const workers = 3
	const keysPerWorker = 24
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, workers)

	// Each worker owns a disjoint key range, so it always knows the
	// exact expected value of every key it touches: any mismatch is a
	// lost or reordered acknowledged write.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cc, err := DialCluster(addrA, DefaultClusterClientConfig())
			if err != nil {
				errCh <- err
				return
			}
			defer cc.Close()
			state := make(map[string][]byte)
			round := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				round++
				for i := 0; i < keysPerWorker; i++ {
					k := fmt.Sprintf("w%d-key-%02d", w, i)
					switch (round + i) % 5 {
					case 0, 1: // put
						v := []byte(fmt.Sprintf("w%d-r%d-i%d", w, round, i))
						if err := cc.Put([]byte(k), v); err != nil {
							errCh <- fmt.Errorf("put %s: %w", k, err)
							return
						}
						state[k] = v
					case 2: // single get
						got, err := cc.Get([]byte(k))
						if v, ok := state[k]; ok {
							if err != nil || !bytes.Equal(got, v) {
								errCh <- fmt.Errorf("get %s: %q, %v (want %q)", k, got, err, v)
								return
							}
						} else if !errors.Is(err, ErrNotFound) {
							errCh <- fmt.Errorf("get absent %s: %v", k, err)
							return
						}
					case 3: // delete
						err := cc.Delete([]byte(k))
						_, present := state[k]
						if present && err != nil {
							errCh <- fmt.Errorf("del %s: %w", k, err)
							return
						}
						if !present && err != nil && !errors.Is(err, ErrNotFound) {
							errCh <- fmt.Errorf("del absent %s: %w", k, err)
							return
						}
						delete(state, k)
					case 4: // batch put then batch get of the whole range
						var bk, bv [][]byte
						for j := 0; j < 4; j++ {
							kk := fmt.Sprintf("w%d-key-%02d", w, (i+j)%keysPerWorker)
							vv := []byte(fmt.Sprintf("w%d-r%d-b%d", w, round, j))
							bk = append(bk, []byte(kk))
							bv = append(bv, vv)
						}
						for j, err := range cc.PutBatch(bk, bv) {
							if err != nil {
								errCh <- fmt.Errorf("putbatch %s: %w", bk[j], err)
								return
							}
							state[string(bk[j])] = bv[j]
						}
						vals, errs := cc.GetBatch(bk)
						for j := range bk {
							if errs[j] != nil || !bytes.Equal(vals[j], state[string(bk[j])]) {
								errCh <- fmt.Errorf("getbatch %s: %q, %v\n%s", bk[j], vals[j], errs[j],
									debugKeyState(map[string]*Server{"a": srvA, "b": srvB}, bk[j]))
								return
							}
						}
					}
				}
			}
		}(w)
	}

	// Let traffic warm up, then migrate every PG while it runs.
	time.Sleep(50 * time.Millisecond)
	for pg := 0; pg < pgs; pg++ {
		if _, err := srvA.MigratePG(pg, "b"); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("migrate pg %d: %v", pg, err)
		}
		select {
		case err := <-errCh:
			close(stop)
			wg.Wait()
			t.Fatalf("worker failed during migration: %v", err)
		default:
		}
	}

	// Let traffic run past the last cutover, then stop and check.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("worker failed: %v", err)
	default:
	}

	// Convergence: a fresh routed client learns the final map once and
	// then never hits a wrong-epoch reject in steady state.
	cc, err := DialCluster(addrA, DefaultClusterClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Put([]byte("settle"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	before := srvA.wrongEpoch.Load() + srvB.wrongEpoch.Load()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("steady-%d", i))
		if err := cc.Put(k, k); err != nil {
			t.Fatalf("steady put: %v", err)
		}
		if _, err := cc.Get(k); err != nil {
			t.Fatalf("steady get: %v", err)
		}
	}
	if after := srvA.wrongEpoch.Load() + srvB.wrongEpoch.Load(); after != before {
		t.Fatalf("steady-state wrong-epoch rejects: %d", after-before)
	}
	if srvB.Stats().KeysImported == 0 {
		t.Fatal("target imported nothing under live traffic")
	}
}
