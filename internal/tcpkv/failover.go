// Failover torture: a replicated two-instance cluster under the mixed
// crash workload, where the PRIMARY dies — at a random device boundary
// or deterministically at a named replication crash point — and a
// surviving backup is promoted. The oracle then replays the acknowledged
// history against the promoted instance through the routed client: no
// observed-durable write may be lost and no acknowledged DELETE may
// resurrect, because under flag⇒quorum-durable every observation forced
// the flag and the flag forced the mirror. The backup-death variant
// kills the backup mid-append instead and asserts the primary demotes it
// and keeps serving alone.
package tcpkv

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"time"

	"efactory/internal/fault"
	"efactory/internal/kv"
	"efactory/internal/nvm"
	"efactory/internal/trace"
)

// failoverPGs is the placement-group count of the failover torture
// cluster. The primary owns every group; the joiner attaches as backup
// to all of them before the workload starts, so promotion must account
// for every key the workload ever acked.
const failoverPGs = 4

// failoverCrashPoints are the deterministic primary-death points: the
// mirror of a flagged record (before and after the append round), and
// the mirror of a DELETE tombstone (before and after). "backup-append"
// is the backup-death variant handled by RunBackupCrashTorture.
var failoverCrashPoints = []string{
	"pre-mirror", "post-mirror", "del-pre-mirror", "del-post-mirror",
}

// RunFailoverTorture executes one primary-death run: crash points land
// wherever the fault plan's device boundaries put them (covering
// post-ack death — the primary dies after acking writes the backup must
// now own). RunFailoverAbortTorture pins the named replication
// checkpoints instead. Both end in srvA's death, srvB's promotion, and
// an oracle check routed through a live ClusterClient — which also
// exercises the client's own failover path: dead-pipe severing, the
// last-map refetch fallback (the seed instance is the dead one), and
// wrong-epoch convergence onto the promoted map.
func RunFailoverTorture(tc fault.Config) (fault.Result, error) {
	return runFailoverTorture(tc, "")
}

// RunFailoverAbortTorture kills the primary at the first visit of the
// named replication crash point (see failoverCrashPoints).
func RunFailoverAbortTorture(tc fault.Config, crashAt string) (fault.Result, error) {
	return runFailoverTorture(tc, crashAt)
}

// failoverCluster is the shared two-instance replicated fixture: a
// (primary, under plan) owns every PG, b attached as backup to all of
// them before any traffic.
type failoverCluster struct {
	srvA, srvB *Server
	addrA      string
	cc         *ClusterClient
	joinEpoch  uint64
}

func (fc *failoverCluster) close() {
	if fc.cc != nil {
		fc.cc.Close()
	}
	if fc.srvA != nil {
		fc.srvA.Close()
	}
	if fc.srvB != nil {
		fc.srvB.Close()
	}
}

func startFailoverCluster(tc fault.Config, plan *fault.Plan) (*failoverCluster, error) {
	cfg := Config{
		Buckets:        tc.Buckets,
		PoolSize:       tc.PoolSize,
		Shards:         tc.Shards,
		VerifyTimeout:  tc.VerifyTimeout,
		BGBatch:        tc.BGBatch,
		CleanThreshold: 0,
		Replicas:       2,
	}
	aCfg := cfg
	aCfg.FaultPlan = plan
	fc := &failoverCluster{}
	var err error
	fc.srvA, err = NewServer(nvm.New(cfg.DeviceSize()), aCfg)
	if err != nil {
		return nil, err
	}
	fc.srvB, err = NewServer(nvm.New(cfg.DeviceSize()), cfg)
	if err != nil {
		fc.close()
		return nil, err
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fc.close()
		return nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		fc.close()
		return nil, err
	}
	go fc.srvA.Serve(lnA)
	go fc.srvB.Serve(lnB)
	fc.addrA = lnA.Addr().String()
	fc.srvA.EnableCluster("a", fc.addrA, failoverPGs)
	fc.srvB.SetInstanceName("b", lnB.Addr().String())
	seedCl, err := Dial(fc.addrA)
	if err != nil {
		fc.close()
		return nil, err
	}
	m, err := seedCl.JoinRPC("b", lnB.Addr().String())
	seedCl.Close()
	if err != nil {
		fc.close()
		return nil, err
	}
	fc.joinEpoch = fc.srvB.SetClusterMap(m)

	// The join spawns the replica-attach loop; traffic may only start once
	// every PG lists b as backup, or a crash could orphan a half-attached
	// group (the single-node-death contract starts at full attachment).
	deadline := time.Now().Add(10 * time.Second)
	for {
		am := fc.srvA.ClusterMap()
		attached := 0
		if am != nil {
			for pg := 0; pg < failoverPGs; pg++ {
				for _, b := range am.BackupsFor(pg) {
					if b == "b" {
						attached++
					}
				}
			}
		}
		if attached == failoverPGs {
			break
		}
		if time.Now().After(deadline) {
			fc.close()
			return nil, fmt.Errorf("replica attach incomplete: %d/%d PGs", attached, failoverPGs)
		}
		time.Sleep(2 * time.Millisecond)
	}

	ccfg := DefaultClusterClientConfig()
	// One transport attempt per routed try: a crash run must see each
	// op's first outcome. Route-level retries stay on — the failover
	// redirect contract is exactly what is under test.
	ccfg.Retry = RetryPolicy{Attempts: 1, Timeout: 5 * time.Second}
	fc.cc, err = DialCluster(fc.addrA, ccfg)
	if err != nil {
		fc.close()
		return nil, err
	}
	return fc, nil
}

// failoverWorkload drives the mixed PUT/GET/DEL traffic until the op
// budget runs out or the primary dies, feeding the oracle under the
// usual acked/pending rules.
func failoverWorkload(tc fault.Config, fc *failoverCluster, ctl *migCrashCtl, oracle *fault.Oracle) []string {
	rng := rand.New(rand.NewPCG(tc.Seed, 0xfa11_04e8))
	var violations []string
	for op := 0; op < tc.Ops && !ctl.died(); op++ {
		if tc.CleanEvery > 0 && op > 0 && op%tc.CleanEvery == 0 {
			fc.srvA.StartCleaning()
		}
		kind := rng.IntN(100)
		keyIdx := rng.IntN(tc.Keys)
		fresh := rng.IntN(5) == 0
		key := []byte(fmt.Sprintf("key-%02d", keyIdx))
		if kind < 60 && fresh {
			key = []byte(fmt.Sprintf("uniq-%04d", op))
		}
		switch {
		case kind < 60: // PUT
			val := fault.WorkloadValue(tc.Seed, string(key), op, tc.ValueLen)
			err := fc.cc.Put(key, val)
			switch {
			case err == nil && !ctl.died():
				oracle.PutAcked(key, val, true)
			case ctl.died():
				oracle.PutPending(key, val)
			}
		case kind < 85: // GET — each observation forces flag, hence mirror
			got, err := fc.cc.Get(key)
			if !ctl.died() && err == nil {
				if v := oracle.ObserveGet(key, got, true); v != "" {
					violations = append(violations, "live: "+v)
				}
			}
		default: // DEL — tombstone must be quorum-durable before the ack
			err := fc.cc.Delete(key)
			switch {
			case err == nil && !ctl.died():
				oracle.DelAcked(key)
			case ctl.died() && !errors.Is(err, ErrNotFound):
				oracle.DelPending(key)
			}
		}
	}
	return violations
}

func runFailoverTorture(tc fault.Config, crashAt string) (fault.Result, error) {
	tc = tc.WithDefaults()
	if tc.VerifyTimeout < time.Millisecond {
		tc.VerifyTimeout = tcpVerifyTimeout
	}
	plan := fault.NewPlan(tc.CrashAt)
	ctl := &migCrashCtl{plan: plan, abortAt: crashAt}
	fc, err := startFailoverCluster(tc, plan)
	if err != nil {
		return fault.Result{}, err
	}
	defer fc.close()
	fc.srvA.SetReplCrash(ctl.hook)

	fc.cc.EnableTracing(1, 0)
	ccTr, aTr, bTr := fc.cc.Tracer(), fc.srvA.Tracer(), fc.srvB.Tracer()
	oracle := fault.NewOracle()
	oracle.SetSpanDump(func(key string) string {
		h := kv.HashKey([]byte(key))
		spans := append(ccTr.SpansForKey(h), aTr.SpansForKey(h)...)
		spans = append(spans, bTr.SpansForKey(h)...)
		if len(spans) == 0 {
			return ""
		}
		return trace.Timeline(spans)
	})

	violations := failoverWorkload(tc, fc, ctl, oracle)

	res := fault.Result{
		Boundaries: plan.Boundaries(),
		Tripped:    plan.Tripped() || ctl.aborted.Load(),
		Stats:      fc.srvA.Stats(),
	}

	// Primary process death, then promotion on the survivor. The backup
	// was attached to every PG, so the take must cover all of them.
	fc.srvA.Close()
	fc.srvA = nil
	if _, err := fc.srvB.PromoteFrom("a"); err != nil {
		return res, fmt.Errorf("promotion failed: %w", err)
	}
	if pm := fc.srvB.ClusterMap(); pm == nil || pm.Epoch <= fc.joinEpoch {
		return res, fmt.Errorf("promotion did not advance the epoch")
	}

	// Oracle check through the routed client: its cached map still names
	// the dead primary, so every key exercises dead-pipe severing, the
	// last-map refetch fallback, and re-routing onto the promoted map.
	get := func(key string) ([]byte, bool) {
		v, err := fc.cc.Get([]byte(key))
		if err != nil {
			return nil, false
		}
		return v, true
	}
	res.Violations = append(violations, oracle.Check(get)...)
	return res, nil
}

// RunBackupCrashTorture is the backup-death variant: the BACKUP dies at
// its append handler mid-run. The primary must demote it (shrinking the
// live set so the quorum stays satisfiable) and keep acking traffic
// alone; afterwards the oracle checks the primary — the only authority
// left — and the run asserts demotion actually happened.
func RunBackupCrashTorture(tc fault.Config) (fault.Result, error) {
	tc = tc.WithDefaults()
	if tc.VerifyTimeout < time.Millisecond {
		tc.VerifyTimeout = tcpVerifyTimeout
	}
	// No device plan on the primary: the only failure is the backup's.
	plan := fault.NewPlan(0)
	fc, err := startFailoverCluster(tc, nil)
	if err != nil {
		return fault.Result{}, err
	}
	defer fc.close()

	// The backup answers StError at its append handler from mid-run on,
	// then its process dies; ctl only models the backup's death, so the
	// workload keeps running — acks must keep flowing from the primary.
	ctl := &migCrashCtl{plan: plan, abortAt: "backup-append"}
	halfway := tc.Ops / 2
	opCount := 0
	var armed atomic.Bool // written by the workload, read by b's handler
	fc.srvB.SetReplCrash(func(point string) bool {
		if !armed.Load() {
			return false
		}
		return ctl.hook(point)
	})

	oracle := fault.NewOracle()
	rng := rand.New(rand.NewPCG(tc.Seed, 0xbac_c4a5))
	var violations []string
	killed := false
	for op := 0; op < tc.Ops; op++ {
		opCount++
		if opCount == halfway {
			armed.Store(true)
		}
		if !killed && ctl.aborted.Load() {
			// The hook fired: the backup's process is gone now.
			fc.srvB.Close()
			fc.srvB = nil
			killed = true
		}
		kind := rng.IntN(100)
		key := []byte(fmt.Sprintf("key-%02d", rng.IntN(tc.Keys)))
		switch {
		case kind < 60:
			val := fault.WorkloadValue(tc.Seed, string(key), op, tc.ValueLen)
			if err := fc.cc.Put(key, val); err == nil {
				oracle.PutAcked(key, val, true)
			}
		case kind < 85:
			if got, err := fc.cc.Get(key); err == nil {
				if v := oracle.ObserveGet(key, got, true); v != "" {
					violations = append(violations, "live: "+v)
				}
			}
		default:
			if err := fc.cc.Delete(key); err == nil {
				oracle.DelAcked(key)
			}
		}
	}
	if killed {
		// Demotion is the mechanism that kept acks flowing; require it.
		_, _, demotions, _, _ := fc.srvA.ReplCounters()
		if demotions == 0 {
			violations = append(violations, "backup died but was never demoted")
		}
	}
	res := fault.Result{
		Boundaries: plan.Boundaries(),
		Tripped:    killed,
		Stats:      fc.srvA.Stats(),
	}
	get := func(key string) ([]byte, bool) {
		v, err := fc.cc.Get([]byte(key))
		if err != nil {
			return nil, false
		}
		return v, true
	}
	res.Violations = append(violations, oracle.Check(get)...)
	return res, nil
}
