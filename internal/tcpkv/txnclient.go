package tcpkv

import (
	"errors"
	"fmt"

	"efactory/internal/crc"
	"efactory/internal/kv"
	"efactory/internal/trace"
	"efactory/internal/wire"
)

// ErrTxnAborted is returned for every op of a transaction the server
// rejected for a reason other than pool/table pressure (which maps to
// ErrServerFull): the transaction applied none of its ops.
var ErrTxnAborted = errors.New("tcpkv: transaction aborted")

// TxnCommit commits keys[i] -> vals[i] atomically: all ops become
// visible together or none do. The whole transaction travels in one
// pipelined RPC (values inline — staging is server-driven, so there is
// no one-sided write phase). It returns the transaction id and per-op
// errors index-aligned with keys; on failure every op carries the abort
// reason, because no op of a failed transaction is applied.
//
// Commits retried under the client's RetryPolicy are at-least-once like
// every other op: a lost response frame does not reveal whether the
// server committed, so a retried commit may apply the same transaction
// twice (same values, a fresh transaction id).
func (c *Client) TxnCommit(keys, vals [][]byte) (uint64, []error) {
	if len(keys) != len(vals) {
		panic("tcpkv: TxnCommit keys/vals length mismatch")
	}
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return 0, errs
	}
	tc, t0 := c.beginTrace("txn_commit", kv.HashKey(keys[0]))
	id, err := c.txnCommitCtx(tc, keys, vals)
	c.endTrace(tc, t0, err)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
	}
	return id, errs
}

// txnCommitCtx is TxnCommit's body under a caller-owned trace context;
// ClusterClient threads its routed-op context through here.
func (c *Client) txnCommitCtx(tc *trace.Ctx, keys, vals [][]byte) (uint64, error) {
	tCRC := traceNow(tc)
	ops := make([]wire.TxnOp, len(keys))
	for i := range keys {
		ops[i] = wire.TxnOp{Crc: crc.Checksum(vals[i]), Key: keys[i], Value: vals[i]}
	}
	tc.Add("client_crc", tCRC, traceNow(tc))
	payload := wire.EncodeTxnOps(ops)
	var id uint64
	err := c.retrying(func() error {
		tRPC := traceNow(tc)
		req := wire.Msg{Type: wire.TTxnCommit, Trace: tc.ID(), Token: uint32(c.epoch.Load()), Value: payload}
		resp, raw, err := c.rpcShared(&req)
		tc.Add("commit_rpc", tRPC, traceNow(tc))
		if err != nil {
			return err
		}
		// Per-op statuses are redundant with the overall status today
		// (all-or-nothing), so only the scalar outcome is consumed.
		releaseResp(raw)
		switch resp.Status {
		case wire.StOK:
			id = resp.Off
			return nil
		case wire.StFull:
			return ErrServerFull
		case wire.StWrongEpoch:
			return wrongEpoch(resp)
		default:
			return ErrTxnAborted
		}
	})
	if err != nil {
		return 0, err
	}
	for i := range keys {
		// The commit is a server-side write: warm the read predictor so
		// hybrid reads skip the not-yet-durable window, and drop any
		// location hint learned from the superseded version.
		c.dropHint(keys[i])
		c.predNotePut(kv.HashKey(keys[i]))
	}
	return id, nil
}

// TxnRead snapshot-reads keys at one consistent cut across shards. It
// returns index-aligned values and errors: an absent key yields
// ErrNotFound for its index and a nil value.
func (c *Client) TxnRead(keys [][]byte) ([][]byte, []error) {
	vals := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	if len(keys) == 0 {
		return vals, errs
	}
	tc, t0 := c.beginTrace("txn_read", kv.HashKey(keys[0]))
	err := c.txnReadCtx(tc, keys, vals, errs)
	c.endTrace(tc, t0, err)
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
	}
	return vals, errs
}

// txnReadCtx is TxnRead's body under a caller-owned trace context. vals
// and errs must be len(keys) long; they are filled in place.
func (c *Client) txnReadCtx(tc *trace.Ctx, keys [][]byte, vals [][]byte, errs []error) error {
	ops := make([]wire.GetOp, len(keys))
	for i, key := range keys {
		ops[i] = wire.GetOp{Slot: wire.NoSlot, Key: key}
	}
	payload := wire.EncodeGetOps(ops)
	return c.retrying(func() error {
		for i := range keys {
			vals[i], errs[i] = nil, nil // a retried attempt refills every op
		}
		tRPC := traceNow(tc)
		req := wire.Msg{Type: wire.TTxnRead, Trace: tc.ID(), Token: uint32(c.epoch.Load()), Value: payload}
		resp, raw, err := c.rpcShared(&req)
		tc.Add("txn_read_rpc", tRPC, traceNow(tc))
		if err != nil {
			return err
		}
		if resp.Status == wire.StWrongEpoch {
			releaseResp(raw)
			return wrongEpoch(resp)
		}
		if resp.Status != wire.StOK {
			releaseResp(raw)
			return fmt.Errorf("tcpkv: txn read status %d", resp.Status)
		}
		rs, derr := wire.DecodeTxnResults(resp.Value)
		if derr != nil || len(rs) != len(keys) {
			releaseResp(raw)
			return fmt.Errorf("tcpkv: malformed txn read response: %v", derr)
		}
		for i, r := range rs {
			switch r.Status {
			case wire.StOK:
				vals[i] = append([]byte(nil), r.Value...)
			case wire.StNotFound:
				errs[i] = ErrNotFound
			default:
				errs[i] = fmt.Errorf("tcpkv: txn read op %d status %d", i, r.Status)
			}
		}
		// Values were copied out above — nothing aliases the buffer.
		releaseResp(raw)
		return nil
	})
}
