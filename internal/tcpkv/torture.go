package tcpkv

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"time"

	"efactory/internal/crc"
	"efactory/internal/fault"
	"efactory/internal/kv"
	"efactory/internal/nvm"
	"efactory/internal/store"
	"efactory/internal/trace"
	"efactory/internal/wire"
)

// tcpVerifyTimeout replaces the fault.Config default when the caller did
// not pick a wall-clock-scale bound: the shared default (2µs) is tuned
// for the harnesses' virtual clocks and would invalidate every in-flight
// value write before its TCP frame could arrive.
const tcpVerifyTimeout = 25 * time.Millisecond

// allocOnly sends a PUT allocation RPC and never writes the value — the
// torture workload's torn PUT, a client that died mid-write. Same-package
// so the harness can reach below the public Put API.
func (c *Client) allocOnly(key, value []byte) error {
	resp, err := c.rpc(wire.Msg{Type: wire.TPut, Crc: crc.Checksum(value), Len: uint64(len(value)), Key: key})
	if err != nil {
		return err
	}
	if resp.Status != wire.StOK {
		return fmt.Errorf("tcpkv: alloc status %d", resp.Status)
	}
	return nil
}

// RunTCPTorture executes one crash-point torture run over the real TCP
// transport on a file-backed device: a live Server (real goroutines,
// locks, wall clock, background verifiers) driven by a Client over
// loopback, with the device and cost sinks wrapped under a fault.Plan.
// The crash model is a process failure: once the plan trips the device
// drops all further mutations, the server is shut down, and the file is
// reopened — exactly the lines that were explicitly flushed survive, the
// volatile overlay is gone (a strict Survival-0 power failure). A second
// server then recovers from the file and the durability Oracle is checked
// against its engines.
//
// Unlike the store and simulation harnesses, runs are not bit-for-bit
// reproducible — goroutine scheduling and wall-clock timing vary — so
// boundary counts are approximate across runs of the same seed. The
// oracle is sound regardless: it only ever requires outcomes that are
// legal for every schedule.
func RunTCPTorture(tc fault.Config) (fault.Result, error) {
	tc = tc.WithDefaults()
	if tc.VerifyTimeout < time.Millisecond {
		tc.VerifyTimeout = tcpVerifyTimeout
	}
	dir, err := os.MkdirTemp("", "efactory-torture-*")
	if err != nil {
		return fault.Result{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "nvm.img")

	plan := fault.NewPlan(tc.CrashAt)
	cfg := Config{
		Buckets:       tc.Buckets,
		PoolSize:      tc.PoolSize,
		Shards:        tc.Shards,
		VerifyTimeout: tc.VerifyTimeout,
		BGBatch:       tc.BGBatch,
		// Cleaning is driven explicitly by the workload (CleanEvery), not
		// by occupancy, so every run sweeps the same op schedule.
		CleanThreshold: 0,
		FaultPlan:      plan,
	}
	dev, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		return fault.Result{}, err
	}
	srv, err := NewServer(dev, cfg)
	if err != nil {
		dev.Close()
		return fault.Result{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		dev.Close()
		return fault.Result{}, err
	}
	go srv.Serve(ln)
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		srv.Close()
		dev.Close()
		return fault.Result{}, err
	}
	// No retries: a crash run must see each op's first outcome, not a
	// masked one. The deadline is a hang safety net only.
	cl.SetRetryPolicy(RetryPolicy{Attempts: 1, Timeout: 5 * time.Second})
	if tc.GetBatch {
		// The batched leg reads through the hint cache so crash points land
		// inside hinted one-sided reads and their RPC fallbacks too.
		cl.EnableHintCache(0)
	}
	// Trace every op and retain all of them: when the oracle flags a
	// violation, the span store holds the offending key's full timeline.
	// The tracer refs stay readable after Close — retention is in-memory.
	cl.EnableTracing(1, 0)
	clTr, srvTr := cl.Tracer(), srv.Tracer()

	oracle := fault.NewOracle()
	oracle.SetSpanDump(func(key string) string {
		h := kv.HashKey([]byte(key))
		spans := append(clTr.SpansForKey(h), srvTr.SpansForKey(h)...)
		if len(spans) == 0 {
			return ""
		}
		return trace.Timeline(spans)
	})
	rng := rand.New(rand.NewPCG(tc.Seed, 0xfa17_707e))
	var violations []string

	for op := 0; op < tc.Ops && !plan.Tripped(); op++ {
		if tc.CleanEvery > 0 && op > 0 && op%tc.CleanEvery == 0 {
			srv.StartCleaning() // races the driver, like production
		}
		// Fixed number of draws per op keeps the workload identical
		// across crash points of one seed.
		kind := rng.IntN(100)
		keyIdx := rng.IntN(tc.Keys)
		fresh := rng.IntN(5) == 0
		key := []byte(fmt.Sprintf("key-%02d", keyIdx))
		if kind < 60 && fresh {
			key = []byte(fmt.Sprintf("uniq-%04d", op))
		}
		switch {
		case kind < 50: // PUT via the client-active scheme
			val := fault.WorkloadValue(tc.Seed, string(key), op, tc.ValueLen)
			err := cl.Put(key, val)
			switch {
			case err == nil && !plan.Tripped():
				oracle.PutAcked(key, val, true)
			case plan.Tripped():
				// The crash landed inside the op: the server may or may
				// not have applied it. Either outcome is legal.
				oracle.PutPending(key, val)
			}
		case kind < 60: // torn PUT: allocation RPC, value never sent
			val := fault.WorkloadValue(tc.Seed, string(key), op, tc.ValueLen)
			err := cl.allocOnly(key, val)
			if plan.Tripped() {
				oracle.PutPending(key, val)
			} else if err == nil {
				oracle.PutAcked(key, val, false)
			}
		case kind >= 72 && kind < 85 && tc.Txn: // TXN: snapshot reads and multi-key commits
			// Both sub-choice draws happen unconditionally so the op schedule
			// stays identical across crash points of one seed.
			snap := rng.IntN(4) == 0
			n := 2 + rng.IntN(fault.TxnMaxOps-1)
			if n > tc.Keys {
				n = tc.Keys // commits require distinct keys
			}
			keys := make([][]byte, n)
			for j := range keys {
				keys[j] = []byte(fmt.Sprintf("key-%02d", (keyIdx+j)%tc.Keys))
			}
			if snap {
				vals, errs := cl.TxnRead(keys)
				if !plan.Tripped() {
					for i := range keys {
						if errs[i] == nil {
							if v := oracle.ObserveGet(keys[i], vals[i], true); v != "" {
								violations = append(violations, "live: "+v)
							}
						}
					}
				}
				break
			}
			vals := make([][]byte, n)
			for j := range keys {
				vals[j] = fault.WorkloadValue(tc.Seed, string(keys[j]), op, tc.ValueLen)
			}
			id, errs := cl.TxnCommit(keys, vals)
			switch {
			case plan.Tripped():
				// The crash landed inside the commit: the whole transaction
				// may be in or out, never partial.
				oracle.TxnPending(id, keys, vals)
			case errs[0] == nil:
				oracle.TxnCommitted(id, keys, vals)
			}
		case kind < 85 && !tc.GetBatch: // GET: observes durability
			got, err := cl.Get(key)
			if !plan.Tripped() && err == nil {
				if v := oracle.ObserveGet(key, got, true); v != "" {
					violations = append(violations, "live: "+v)
				}
			}
		case kind < 85: // batched GET leg: multi-GET through the hint cache
			keys := [][]byte{key}
			for j := 1; j < fault.GetBatchFan; j++ {
				keys = append(keys, []byte(fmt.Sprintf("key-%02d", rng.IntN(tc.Keys))))
			}
			vals, errs := cl.GetBatch(keys)
			if !plan.Tripped() {
				// The batch's reads are concurrent: observe them as one
				// batch so duplicate fan keys resolving in either order
				// (optimistic snapshot vs mid-batch RPC fallback) are not
				// misread as a version regression.
				found := make([]bool, len(keys))
				for i := range keys {
					found[i] = errs[i] == nil
				}
				for _, v := range oracle.ObserveGetBatch(keys, vals, found) {
					violations = append(violations, "live: "+v)
				}
			}
		default: // DEL
			err := cl.Delete(key)
			switch {
			case err == nil && !plan.Tripped():
				oracle.DelAcked(key)
			case plan.Tripped() && !errors.Is(err, ErrNotFound):
				oracle.DelPending(key)
			}
		}
	}

	res := fault.Result{
		Boundaries: plan.Boundaries(),
		Tripped:    plan.Tripped(),
		Stats:      srv.Stats(),
	}

	// Process restart: tear everything down and reopen the file. Only
	// explicitly flushed lines ever reached it, so the reopened device IS
	// the post-crash persisted image.
	cl.Close()
	srv.Close()
	if err := dev.Close(); err != nil {
		return res, err
	}
	dev2, err := nvm.OpenFile(path, cfg.DeviceSize())
	if err != nil {
		return res, err
	}
	defer dev2.Close()
	rcfg := cfg
	rcfg.FaultPlan = nil
	srv2, err := NewServer(dev2, rcfg) // recovery runs inside store.New
	if err != nil {
		return res, fmt.Errorf("recovery failed: %w", err)
	}
	defer srv2.Close()
	get := func(key string) ([]byte, bool) {
		_, eng := srv2.shardFor([]byte(key))
		gr := eng.Get(nil, []byte(key))
		if gr.Status != store.StatusOK {
			return nil, false
		}
		pool := eng.Pool(gr.Pool)
		hd := pool.Header(gr.Off)
		return pool.ReadValue(gr.Off, hd.KLen, hd.VLen), true
	}
	violations = append(violations, oracle.Check(get)...)
	res.Violations = violations
	return res, nil
}
