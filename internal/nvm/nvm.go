// Package nvm emulates byte-addressable non-volatile main memory (NVMM)
// with an explicit volatility boundary, the property that makes remote
// crash consistency hard (paper §2.2).
//
// Stores land in a volatile cache-line overlay (modelling the CPU cache /
// DDIO path: DMA from the NIC is written to the cache domain, not to the
// persistent media). A line becomes durable only when it is explicitly
// flushed (CLFLUSH equivalent) or when the crash model decides it was
// naturally evicted before the failure. Crash discards the overlay — except
// lines the eviction model kept — exactly reproducing "data may partially
// exist in the NVM" from the paper.
//
// The failure-atomicity unit of real NVMM is 8 bytes; eviction and flushing
// operate on 64-byte cache lines. Both granularities are modelled: flushes
// and eviction are per-line, and Write8 provides the 8-byte atomic store
// used for metadata.
package nvm

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"sync"
)

// LineSize is the cache-line size in bytes: the granularity of flushes and
// of data loss at a crash.
const LineSize = 64

// AtomicUnit is the failure-atomicity unit of NVMM in bytes.
const AtomicUnit = 8

// Device is the interface storage engines program against. *Memory is the
// canonical in-process implementation; *FileBacked adds real durability.
type Device interface {
	// Size returns the capacity in bytes.
	Size() int
	// Read copies len(dst) bytes at off into dst from the coherent view
	// (volatile overlay if dirty, else persistent media).
	Read(off int, dst []byte)
	// Write copies src to off in the volatile domain. The data is NOT
	// durable until the covering lines are flushed.
	Write(off int, src []byte)
	// Write8 performs an 8-byte atomic store at off (which must be
	// 8-byte aligned) in the volatile domain.
	Write8(off int, v uint64)
	// Read8 performs an 8-byte load from the coherent view.
	Read8(off int) uint64
	// Flush makes the cache lines covering [off, off+n) durable
	// (CLFLUSH/CLWB equivalent).
	Flush(off, n int)
	// Drain is the SFENCE equivalent. Flush in this model completes
	// synchronously, so Drain is a semantic no-op kept for API fidelity;
	// its cost is charged by the simulation's cost model.
	Drain()
	// Zero durably clears [off, off+n): both the volatile overlay and the
	// persistent media. Used when a data pool is recycled for log
	// cleaning, so stale object headers cannot be mistaken for live ones.
	Zero(off, n int)
}

// Memory is an emulated NVMM module.
//
// It is safe for concurrent use; the simulator runs single-threaded but the
// TCP transport accesses a Memory from multiple goroutines.
type Memory struct {
	mu      sync.Mutex
	persist []byte                 // durable contents
	dirty   map[int][LineSize]byte // volatile overlay, keyed by line index
	flushes int                    // lines flushed, for stats/tests
}

var _ Device = (*Memory)(nil)

// New returns a zeroed Memory of the given size in bytes. Size is rounded
// up to a whole number of cache lines.
func New(size int) *Memory {
	if size <= 0 {
		panic("nvm: size must be positive")
	}
	if r := size % LineSize; r != 0 {
		size += LineSize - r
	}
	return &Memory{
		persist: make([]byte, size),
		dirty:   make(map[int][LineSize]byte),
	}
}

// Size returns the capacity in bytes.
func (m *Memory) Size() int { return len(m.persist) }

func (m *Memory) check(off, n int) {
	if off < 0 || n < 0 || off+n > len(m.persist) {
		panic(fmt.Sprintf("nvm: access [%d, %d) out of range [0, %d)", off, off+n, len(m.persist)))
	}
}

// Read copies len(dst) bytes from the coherent (cache-visible) view.
func (m *Memory) Read(off int, dst []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.check(off, len(dst))
	m.readLocked(off, dst)
}

func (m *Memory) readLocked(off int, dst []byte) {
	copy(dst, m.persist[off:off+len(dst)])
	// Overlay dirty lines.
	first := off / LineSize
	last := (off + len(dst) - 1) / LineSize
	for li := first; li <= last; li++ {
		line, ok := m.dirty[li]
		if !ok {
			continue
		}
		base := li * LineSize
		for i := 0; i < LineSize; i++ {
			pos := base + i
			if pos >= off && pos < off+len(dst) {
				dst[pos-off] = line[i]
			}
		}
	}
}

// Write stores src at off in the volatile domain.
func (m *Memory) Write(off int, src []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.check(off, len(src))
	m.writeLocked(off, src)
}

func (m *Memory) writeLocked(off int, src []byte) {
	for len(src) > 0 {
		li := off / LineSize
		base := li * LineSize
		line, ok := m.dirty[li]
		if !ok {
			// Bring the line into the "cache" from persistent media.
			copy(line[:], m.persist[base:base+LineSize])
		}
		n := copy(line[off-base:], src)
		m.dirty[li] = line
		off += n
		src = src[n:]
	}
}

// Write8 performs an 8-byte atomic volatile store. off must be 8-byte
// aligned so the store cannot straddle the atomicity unit.
func (m *Memory) Write8(off int, v uint64) {
	if off%AtomicUnit != 0 {
		panic(fmt.Sprintf("nvm: Write8 at unaligned offset %d", off))
	}
	var b [8]byte
	putLE64(b[:], v)
	m.Write(off, b[:])
}

// Read8 performs an 8-byte load from the coherent view.
func (m *Memory) Read8(off int) uint64 {
	var b [8]byte
	m.Read(off, b[:])
	return le64(b[:])
}

// Flush persists the cache lines covering [off, off+n).
func (m *Memory) Flush(off, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		return
	}
	m.check(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for li := first; li <= last; li++ {
		m.flushLineLocked(li)
	}
}

func (m *Memory) flushLineLocked(li int) {
	line, ok := m.dirty[li]
	if !ok {
		return
	}
	copy(m.persist[li*LineSize:], line[:])
	delete(m.dirty, li)
	m.flushes++
}

// Drain is the SFENCE equivalent; see Device.Drain.
func (m *Memory) Drain() {}

// Zero durably clears [off, off+n); see Device.Zero.
func (m *Memory) Zero(off, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 {
		return
	}
	m.check(off, n)
	clear(m.persist[off : off+n])
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for li := first; li <= last; li++ {
		line, ok := m.dirty[li]
		if !ok {
			continue
		}
		base := li * LineSize
		for i := 0; i < LineSize; i++ {
			if base+i >= off && base+i < off+n {
				line[i] = 0
			}
		}
		m.dirty[li] = line
	}
}

// DirtyLines returns the number of cache lines whose contents are volatile.
func (m *Memory) DirtyLines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.dirty)
}

// FlushedLines returns the cumulative number of line flushes, for tests and
// instrumentation.
func (m *Memory) FlushedLines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushes
}

// ReadPersisted copies bytes from the persistent media only, ignoring the
// volatile overlay: the post-crash view. Intended for tests and recovery
// verification.
func (m *Memory) ReadPersisted(off int, dst []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.check(off, len(dst))
	copy(dst, m.persist[off:off+len(dst)])
}

// Crash simulates a power failure. Each dirty line independently survives
// (was evicted to media before the failure) with probability survival,
// drawn from a PRNG seeded with seed so crashes are reproducible; all other
// dirty lines revert to their last flushed contents. After Crash the
// overlay is empty, as caches are after a reboot.
//
// survival = 0 models "nothing unflushed survives"; survival = 1 models
// "everything already made it to media". Values in between produce the
// partial, torn states the paper's consistency machinery must tolerate.
func (m *Memory) Crash(seed uint64, survival float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rng := rand.New(rand.NewPCG(seed, 0xda7a_b10c))
	// Iterate lines in sorted order for determinism (map order is random).
	lines := make([]int, 0, len(m.dirty))
	for li := range m.dirty {
		lines = append(lines, li)
	}
	slices.Sort(lines)
	for _, li := range lines {
		if rng.Float64() < survival {
			line := m.dirty[li]
			copy(m.persist[li*LineSize:], line[:])
		}
	}
	m.dirty = make(map[int][LineSize]byte)
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
