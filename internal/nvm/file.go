package nvm

import (
	"fmt"
	"os"
	"sync"
)

// FileBacked is a Device whose persistent media is a real file, so
// durability survives process restarts. The volatile overlay behaves like
// Memory's; Flush writes the covered lines to the file, and Drain issues
// fsync. It backs the TCP deployment mode (cmd/efactory-server), where a
// killed and restarted server must recover from genuinely persistent state.
type FileBacked struct {
	mu    sync.Mutex
	f     *os.File
	size  int
	cache map[int][LineSize]byte // volatile overlay
	base  []byte                 // in-memory mirror of the file for fast reads
	dirty bool                   // any flush since last Drain
}

var _ Device = (*FileBacked)(nil)

// OpenFile opens (creating or extending if needed) a file-backed device of
// the given size. Existing contents within size are preserved, which is how
// recovery after a restart sees the pre-crash state.
func OpenFile(path string, size int) (*FileBacked, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nvm: size must be positive, got %d", size)
	}
	if r := size % LineSize; r != 0 {
		size += LineSize - r
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("nvm: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: stat %s: %w", path, err)
	}
	if st.Size() < int64(size) {
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			return nil, fmt.Errorf("nvm: extend %s: %w", path, err)
		}
	}
	base := make([]byte, size)
	if _, err := f.ReadAt(base, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("nvm: read %s: %w", path, err)
	}
	return &FileBacked{
		f:     f,
		size:  size,
		cache: make(map[int][LineSize]byte),
		base:  base,
	}, nil
}

// Close releases the file handle after a final sync.
func (d *FileBacked) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// Size returns the capacity in bytes.
func (d *FileBacked) Size() int { return d.size }

func (d *FileBacked) check(off, n int) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("nvm: access [%d, %d) out of range [0, %d)", off, off+n, d.size))
	}
}

// Read copies from the coherent view (overlay over the file mirror).
func (d *FileBacked) Read(off int, dst []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.check(off, len(dst))
	copy(dst, d.base[off:off+len(dst)])
	first := off / LineSize
	last := (off + len(dst) - 1) / LineSize
	for li := first; li <= last; li++ {
		line, ok := d.cache[li]
		if !ok {
			continue
		}
		lineBase := li * LineSize
		for i := 0; i < LineSize; i++ {
			pos := lineBase + i
			if pos >= off && pos < off+len(dst) {
				dst[pos-off] = line[i]
			}
		}
	}
}

// Write stores src at off in the volatile overlay only.
func (d *FileBacked) Write(off int, src []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.check(off, len(src))
	for len(src) > 0 {
		li := off / LineSize
		lineBase := li * LineSize
		line, ok := d.cache[li]
		if !ok {
			copy(line[:], d.base[lineBase:lineBase+LineSize])
		}
		n := copy(line[off-lineBase:], src)
		d.cache[li] = line
		off += n
		src = src[n:]
	}
}

// Write8 performs an 8-byte aligned volatile store.
func (d *FileBacked) Write8(off int, v uint64) {
	if off%AtomicUnit != 0 {
		panic(fmt.Sprintf("nvm: Write8 at unaligned offset %d", off))
	}
	var b [8]byte
	putLE64(b[:], v)
	d.Write(off, b[:])
}

// Read8 performs an 8-byte load from the coherent view.
func (d *FileBacked) Read8(off int) uint64 {
	var b [8]byte
	d.Read(off, b[:])
	return le64(b[:])
}

// Flush writes the covering lines to the file. An I/O error here is fatal:
// the device can no longer honour its durability contract.
func (d *FileBacked) Flush(off, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 0 {
		return
	}
	d.check(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for li := first; li <= last; li++ {
		line, ok := d.cache[li]
		if !ok {
			continue
		}
		lineBase := li * LineSize
		copy(d.base[lineBase:], line[:])
		if _, err := d.f.WriteAt(line[:], int64(lineBase)); err != nil {
			panic(fmt.Sprintf("nvm: flush write failed: %v", err))
		}
		delete(d.cache, li)
		d.dirty = true
	}
}

// Zero durably clears [off, off+n); see Device.Zero.
func (d *FileBacked) Zero(off, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n <= 0 {
		return
	}
	d.check(off, n)
	zeros := make([]byte, n)
	copy(d.base[off:], zeros)
	if _, err := d.f.WriteAt(zeros, int64(off)); err != nil {
		panic(fmt.Sprintf("nvm: zero write failed: %v", err))
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for li := first; li <= last; li++ {
		line, ok := d.cache[li]
		if !ok {
			continue
		}
		lineBase := li * LineSize
		for i := 0; i < LineSize; i++ {
			if lineBase+i >= off && lineBase+i < off+n {
				line[i] = 0
			}
		}
		d.cache[li] = line
	}
	d.dirty = true
}

// Drain fsyncs pending flushes to stable storage.
func (d *FileBacked) Drain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.dirty {
		return
	}
	if err := d.f.Sync(); err != nil {
		panic(fmt.Sprintf("nvm: fsync failed: %v", err))
	}
	d.dirty = false
}
