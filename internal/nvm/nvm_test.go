package nvm

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestWriteReadCoherent(t *testing.T) {
	m := New(1024)
	data := []byte("hello, persistent world")
	m.Write(100, data)
	got := make([]byte, len(data))
	m.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("coherent read = %q, want %q", got, data)
	}
}

func TestUnflushedDataNotPersisted(t *testing.T) {
	m := New(1024)
	m.Write(0, []byte("volatile"))
	got := make([]byte, 8)
	m.ReadPersisted(0, got)
	if !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unflushed write reached media: %q", got)
	}
}

func TestFlushPersists(t *testing.T) {
	m := New(1024)
	data := []byte("durable data crossing a cache line boundary......................")
	m.Write(40, data) // straddles lines 0..1
	m.Flush(40, len(data))
	got := make([]byte, len(data))
	m.ReadPersisted(40, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("flushed data not on media: %q", got)
	}
	if m.DirtyLines() != 0 {
		t.Fatalf("DirtyLines = %d after full flush", m.DirtyLines())
	}
}

func TestPartialFlushOnlyCoversRange(t *testing.T) {
	m := New(1024)
	m.Write(0, bytes.Repeat([]byte{0xAA}, 256)) // lines 0-3 dirty
	m.Flush(0, 64)                              // only line 0
	if m.DirtyLines() != 3 {
		t.Fatalf("DirtyLines = %d, want 3", m.DirtyLines())
	}
	got := make([]byte, 128)
	m.ReadPersisted(0, got)
	if got[0] != 0xAA || got[63] != 0xAA {
		t.Fatal("line 0 not persisted")
	}
	if got[64] != 0 {
		t.Fatal("line 1 persisted without flush")
	}
}

func TestCrashDropsDirtyLines(t *testing.T) {
	m := New(1024)
	m.Write(0, []byte("to be lost"))
	m.Write(512, []byte("to be kept"))
	m.Flush(512, 10)
	m.Crash(1, 0) // survival 0: all unflushed lines lost
	got := make([]byte, 10)
	m.Read(0, got)
	if !bytes.Equal(got, make([]byte, 10)) {
		t.Fatalf("unflushed data survived crash: %q", got)
	}
	m.Read(512, got)
	if string(got) != "to be kept" {
		t.Fatalf("flushed data lost in crash: %q", got)
	}
}

func TestCrashSurvivalOneKeepsEverything(t *testing.T) {
	m := New(1024)
	m.Write(128, []byte("evicted before crash"))
	m.Crash(1, 1)
	got := make([]byte, 20)
	m.Read(128, got)
	if string(got) != "evicted before crash" {
		t.Fatalf("survival=1 lost data: %q", got)
	}
}

func TestCrashPartialIsDeterministic(t *testing.T) {
	run := func() []byte {
		m := New(4096)
		for i := 0; i < 64; i++ {
			m.Write(i*64, bytes.Repeat([]byte{byte(i + 1)}, 64))
		}
		m.Crash(99, 0.5)
		out := make([]byte, 4096)
		m.Read(0, out)
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("crash with same seed is nondeterministic")
	}
	// And a 0.5 survival rate over 64 lines should keep some, lose some.
	kept := 0
	for i := 0; i < 64; i++ {
		if a[i*64] != 0 {
			kept++
		}
	}
	if kept == 0 || kept == 64 {
		t.Fatalf("survival=0.5 kept %d/64 lines; model not partial", kept)
	}
}

func TestWrite8Atomicity(t *testing.T) {
	m := New(128)
	m.Write8(16, 0xdeadbeefcafef00d)
	if v := m.Read8(16); v != 0xdeadbeefcafef00d {
		t.Fatalf("Read8 = %#x", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Write8 did not panic")
		}
	}()
	m.Write8(17, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Write(60, []byte("overflows"))
}

func TestSizeRoundsUpToLine(t *testing.T) {
	m := New(100)
	if m.Size() != 128 {
		t.Fatalf("Size = %d, want 128", m.Size())
	}
}

func TestFlushedLinesCounter(t *testing.T) {
	m := New(1024)
	m.Write(0, bytes.Repeat([]byte{1}, 192))
	m.Flush(0, 192)
	if m.FlushedLines() != 3 {
		t.Fatalf("FlushedLines = %d, want 3", m.FlushedLines())
	}
	m.Flush(0, 192) // clean lines: no-op
	if m.FlushedLines() != 3 {
		t.Fatalf("FlushedLines = %d after redundant flush, want 3", m.FlushedLines())
	}
}

// TestPropertyFlushedEqualsCrashView: after an arbitrary sequence of writes
// where a subset is flushed, a survival-0 crash exposes exactly the flushed
// state. This is the core invariant every consistency argument rests on.
func TestPropertyFlushedEqualsCrashView(t *testing.T) {
	type op struct {
		Off   uint16
		Data  []byte
		Flush bool
	}
	f := func(ops []op, seed uint64) bool {
		const size = 4096
		m := New(size)
		shadow := make([]byte, size)   // expected persistent state
		volatile := make([]byte, size) // expected coherent state
		for _, o := range ops {
			if len(o.Data) == 0 {
				continue
			}
			off := int(o.Off) % (size - len(o.Data)%size)
			if off+len(o.Data) > size {
				continue
			}
			m.Write(off, o.Data)
			copy(volatile[off:], o.Data)
			if o.Flush {
				m.Flush(off, len(o.Data))
				// Flush persists whole covering lines of the coherent view.
				first := off / LineSize * LineSize
				last := (off + len(o.Data) + LineSize - 1) / LineSize * LineSize
				if last > size {
					last = size
				}
				copy(shadow[first:last], volatile[first:last])
			}
		}
		// Coherent view must match the volatile shadow before crash.
		got := make([]byte, size)
		m.Read(0, got)
		if !bytes.Equal(got, volatile) {
			return false
		}
		m.Crash(seed, 0)
		m.Read(0, got)
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.nvm")
	d, err := OpenFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(100, []byte("persisted across reopen"))
	d.Flush(100, 23)
	d.Drain()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, 23)
	d2.Read(100, got)
	if string(got) != "persisted across reopen" {
		t.Fatalf("reopened contents = %q", got)
	}
}

func TestFileBackedUnflushedLostOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.nvm")
	d, err := OpenFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(0, []byte("never flushed"))
	// Simulate a crash: close the file WITHOUT flushing the overlay.
	d.f.Close()

	d2, err := OpenFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, 13)
	d2.Read(0, got)
	if !bytes.Equal(got, make([]byte, 13)) {
		t.Fatalf("unflushed write survived crash: %q", got)
	}
}

func TestFileBackedWrite8(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.nvm")
	d, err := OpenFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Write8(8, 12345)
	if v := d.Read8(8); v != 12345 {
		t.Fatalf("Read8 = %d", v)
	}
}

func TestZeroClearsPersistAndOverlay(t *testing.T) {
	m := New(1024)
	m.Write(0, bytes.Repeat([]byte{0xFF}, 256))
	m.Flush(0, 128) // first two lines persisted, next two dirty
	m.Zero(64, 128) // spans one persisted and one dirty line
	got := make([]byte, 256)
	m.Read(0, got)
	for i := 0; i < 64; i++ {
		if got[i] != 0xFF {
			t.Fatalf("byte %d clobbered outside Zero range", i)
		}
	}
	for i := 64; i < 192; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed (coherent view)", i)
		}
	}
	m.ReadPersisted(64, got[:128])
	for i, b := range got[:128] {
		if b != 0 {
			t.Fatalf("persisted byte %d not zeroed", 64+i)
		}
	}
	m.Drain() // no-op, for coverage of the contract
	m.Zero(0, 0)
}

func TestFileBackedZeroAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "z.nvm")
	d, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1024 {
		t.Fatalf("Size = %d", d.Size())
	}
	d.Write(0, bytes.Repeat([]byte{7}, 256))
	d.Flush(0, 128)
	d.Zero(64, 128)
	got := make([]byte, 256)
	d.Read(0, got)
	for i := 64; i < 192; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	d.Drain()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// The zeroed range must be durable across reopen.
	d2, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	d2.Read(0, got)
	for i := 64; i < 192; i++ {
		if got[i] != 0 {
			t.Fatalf("zeroed byte %d resurrected after reopen", i)
		}
	}
	// Flushed-then-zeroed prefix stays as flushed.
	for i := 0; i < 64; i++ {
		if got[i] != 7 {
			t.Fatalf("byte %d lost (was flushed)", i)
		}
	}
}

func TestFileBackedOutOfRangePanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.nvm")
	d, err := OpenFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Read(120, make([]byte, 16))
}

func TestOpenFileErrors(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "x.nvm"), 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nodir", "deep", "x.nvm"), 128); err == nil {
		t.Fatal("unreachable path accepted")
	}
}

func TestOpenFilePreservesLargerExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.nvm")
	d, err := OpenFile(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	d.Write(100, []byte("keep"))
	d.Flush(100, 4)
	d.Close()
	// Reopen smaller: existing bytes within the window must be intact.
	d2, err := OpenFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, 4)
	d2.Read(100, got)
	if string(got) != "keep" {
		t.Fatalf("got %q", got)
	}
}
