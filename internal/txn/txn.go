// Package txn is the transaction layer over internal/store: atomic
// multi-key commit and snapshot-isolated multi-key reads, both built on
// the engine's existing version chains and cut sequences (ROADMAP item
// 3). The store contributes the mechanics — staging, the commit record,
// the visibility flip, seq-bounded reads — and this package contributes
// the protocol: transaction ids, the commit lock that makes records and
// snapshot cuts totally ordered, and the post-commit durability settle
// through the mirror seam.
//
// Commits are single-node-atomic: all keys must land on one store. The
// cluster client enforces this with a typed cross-instance rejection;
// distributed commit is future work (SafarDB is the reference point).
package txn

import (
	"sync"
	"sync/atomic"

	"efactory/internal/store"
)

// Manager coordinates transactions over one store. The commit lock (mu)
// serializes commit records and snapshot cuts: a cut taken under it can
// never land between one transaction's record and its visibility flips,
// so snapshots observe every transaction entirely or not at all.
type Manager struct {
	st     *store.Store
	mu     sync.Locker
	nextID uint64 // atomic
}

// NewManager wraps st. lock guards the commit section; nil gets a real
// mutex (the TCP transport). The simulation passes its no-op locker —
// there the commit section is yield-free, so mutual exclusion holds by
// construction, exactly like the engine locks.
func NewManager(st *store.Store, lock sync.Locker) *Manager {
	if lock == nil {
		lock = &sync.Mutex{}
	}
	return &Manager{st: st, mu: lock}
}

// Store returns the underlying store.
func (m *Manager) Store() *store.Store { return m.st }

// Commit atomically writes vals[i] to keys[i] for all i, or none of
// them. It returns the transaction id, per-op statuses index-aligned
// with keys, and the overall status: StatusOK means every op committed
// and is visible; anything else means no op is (staged garbage is left
// for the cleaner). Duplicate keys are allowed and apply in op order.
//
// A returned StatusOK is an acknowledgment that the whole transaction
// survives any crash from this point on: the commit record and every
// staged value are persisted before the record write, and recovery
// replays recorded transactions whole. The per-version durability flags
// then settle asynchronously (or synchronously below, best-effort)
// through the usual verify/mirror path.
func (m *Manager) Commit(h any, keys, vals [][]byte) (uint64, []store.Status, store.Status) {
	per := make([]store.Status, len(keys))
	fail := func(st store.Status) (uint64, []store.Status, store.Status) {
		for i := range per {
			per[i] = st
		}
		return 0, per, st
	}
	if len(keys) == 0 || len(keys) != len(vals) {
		return fail(store.StatusFull)
	}
	id := atomic.AddUint64(&m.nextID, 1)

	ops := make([]*store.StagedOp, len(keys))
	for i := range keys {
		op, st := m.st.TxnStage(h, id, keys[i], vals[i])
		if st != store.StatusOK {
			return fail(st)
		}
		ops[i] = op
	}

	// Charge the commit record's cost before taking the commit lock: the
	// locked section below must not yield (simulation) or do slow work
	// under the global lock (TCP).
	m.st.Sink().Charge(h, store.OpAlloc, store.TxnRecordCost(len(ops)))
	m.st.Sink().Charge(h, store.OpFlush, store.TxnRecordCost(len(ops)))

	m.mu.Lock()
	st := m.st.TxnCommit(h, id, ops)
	m.mu.Unlock()
	if st != store.StatusOK {
		return fail(st)
	}

	// Best-effort synchronous settle: push each committed head through
	// the verify/mirror/flag path so flag⇒quorum-durable extends to the
	// whole transaction promptly. Failure is benign — the background
	// verifier and the GET path retry.
	for _, key := range keys {
		m.st.Shard(m.st.ShardFor(key)).VerifyKeySettled(h, key)
	}
	for i := range per {
		per[i] = store.StatusOK
	}
	return id, per, store.StatusOK
}

// SnapshotResult is one key's outcome of a SnapshotGet.
type SnapshotResult struct {
	Status store.Status
	Seq    uint64 // served version's sequence number (0 if not found)
	Value  []byte
}

// SnapshotGet reads keys at one consistent cut: a per-shard sequence
// vector pinned under the commit lock. Every key is served from the
// newest version at or below its shard's pinned sequence, so the result
// set reflects a prefix of each shard's history that contains every
// committed transaction entirely or not at all. Results are
// index-aligned with keys.
//
// Two documented limits, both inherent to the substrate: DELETEs are not
// versioned (a tombstone hides every version regardless of the cut), and
// a snapshot does not pin versions against the log cleaner — the cut is
// meant to be used promptly (one RPC), not held open.
func (m *Manager) SnapshotGet(h any, keys [][]byte) []SnapshotResult {
	m.mu.Lock()
	vec := m.st.SeqVector()
	m.mu.Unlock()
	res := make([]SnapshotResult, len(keys))
	for i, key := range keys {
		sh := m.st.ShardFor(key)
		val, seq, st := m.st.Shard(sh).GetAt(h, key, vec[sh])
		res[i] = SnapshotResult{Status: st, Seq: seq, Value: val}
	}
	return res
}
