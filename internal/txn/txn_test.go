package txn_test

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"efactory/internal/nvm"
	"efactory/internal/store"
	"efactory/internal/txn"
)

// newStore builds a direct store (no transport) for transaction tests and
// returns it with its device, so tests can crash and recover it.
func newStore(t *testing.T, shards int) (*store.Store, *nvm.Memory, store.Config) {
	t.Helper()
	cfg := store.Config{Shards: shards, Buckets: 256, PoolSize: 64 << 10, VerifyTimeout: time.Second}
	dev := nvm.New(cfg.DeviceSize())
	st, _, err := store.New(dev, cfg, store.Deps{})
	if err != nil {
		t.Fatal(err)
	}
	return st, dev, cfg
}

// getNow reads key's current head (no snapshot bound).
func getNow(t *testing.T, st *store.Store, key []byte) ([]byte, bool) {
	t.Helper()
	e := st.Shard(st.ShardFor(key))
	val, _, s := e.GetAt(nil, key, store.NoSeqLimit)
	if s == store.StatusNotFound {
		return nil, false
	}
	if s != store.StatusOK {
		t.Fatalf("get %q: status %v", key, s)
	}
	return val, true
}

func TestCommitAtomicVisibility(t *testing.T) {
	st, _, _ := newStore(t, 4)
	defer st.Stop()
	m := txn.NewManager(st, nil)
	keys := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
	vals := [][]byte{[]byte("v-alpha"), []byte("v-bravo"), []byte("v-charlie")}
	id, per, s := m.Commit(nil, keys, vals)
	if s != store.StatusOK || id == 0 {
		t.Fatalf("commit: id=%d status %v", id, s)
	}
	for i, ps := range per {
		if ps != store.StatusOK {
			t.Fatalf("per-op %d: %v", i, ps)
		}
		got, ok := getNow(t, st, keys[i])
		if !ok || !bytes.Equal(got, vals[i]) {
			t.Fatalf("key %q after commit: got %q ok=%v", keys[i], got, ok)
		}
	}
	id2, _, s := m.Commit(nil, keys[:1], [][]byte{[]byte("v2")})
	if s != store.StatusOK || id2 <= id {
		t.Fatalf("second commit: id %d after %d, status %v", id2, id, s)
	}
}

func TestCommitAbortLeavesOldStateIntact(t *testing.T) {
	// A pool too small for the transaction: the commit must fail whole and
	// every key must keep serving its pre-transaction value.
	cfg := store.Config{Shards: 1, Buckets: 64, PoolSize: 2 << 10, VerifyTimeout: time.Second}
	dev := nvm.New(cfg.DeviceSize())
	st, _, err := store.New(dev, cfg, store.Deps{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	m := txn.NewManager(st, nil)
	keys := [][]byte{[]byte("a"), []byte("b")}
	old := [][]byte{[]byte("old-a"), []byte("old-b")}
	if _, _, s := m.Commit(nil, keys, old); s != store.StatusOK {
		t.Fatalf("seed commit: %v", s)
	}
	big := bytes.Repeat([]byte{0xee}, 1500)
	_, per, s := m.Commit(nil, keys, [][]byte{big, big})
	if s == store.StatusOK {
		t.Skip("pool unexpectedly fit the oversized transaction")
	}
	for i, ps := range per {
		if ps != s {
			t.Fatalf("per-op %d status %v != overall %v", i, ps, s)
		}
	}
	for i := range keys {
		got, ok := getNow(t, st, keys[i])
		if !ok || !bytes.Equal(got, old[i]) {
			t.Fatalf("key %q after aborted commit: got %q ok=%v, want %q", keys[i], got, ok, old[i])
		}
	}
}

func TestSnapshotCutExcludesLaterCommits(t *testing.T) {
	st, _, _ := newStore(t, 2)
	defer st.Stop()
	m := txn.NewManager(st, nil)
	keys := [][]byte{[]byte("k0"), []byte("k1"), []byte("k2")}
	a := [][]byte{[]byte("a0"), []byte("a1"), []byte("a2")}
	b := [][]byte{[]byte("b0"), []byte("b1"), []byte("b2")}
	if _, _, s := m.Commit(nil, keys, a); s != store.StatusOK {
		t.Fatalf("commit a: %v", s)
	}
	vec := st.SeqVector() // the cut: everything of a, nothing of b
	if _, _, s := m.Commit(nil, keys, b); s != store.StatusOK {
		t.Fatalf("commit b: %v", s)
	}
	for i, key := range keys {
		sh := st.ShardFor(key)
		val, seq, s := st.Shard(sh).GetAt(nil, key, vec[sh])
		if s != store.StatusOK || !bytes.Equal(val, a[i]) {
			t.Fatalf("snapshot read %q: %q status %v, want %q", key, val, s, a[i])
		}
		if seq > vec[sh] {
			t.Fatalf("snapshot read %q served seq %d at cut %d", key, seq, vec[sh])
		}
		now, _ := getNow(t, st, key)
		if !bytes.Equal(now, b[i]) {
			t.Fatalf("unbounded read %q: %q, want %q", key, now, b[i])
		}
	}
	// SnapshotGet pins its own (current) cut: it must see b entirely.
	for i, r := range m.SnapshotGet(nil, keys) {
		if r.Status != store.StatusOK || !bytes.Equal(r.Value, b[i]) {
			t.Fatalf("SnapshotGet %q: %q status %v", keys[i], r.Value, r.Status)
		}
	}
}

func TestRecoveryCommittedTxnSurvivesWhole(t *testing.T) {
	st, dev, cfg := newStore(t, 2)
	m := txn.NewManager(st, nil)
	keys := [][]byte{[]byte("left"), []byte("right")}
	vals := [][]byte{[]byte("surviving-left"), []byte("surviving-right")}
	if _, _, s := m.Commit(nil, keys, vals); s != store.StatusOK {
		t.Fatalf("commit: %v", s)
	}
	st.Stop()
	dev.Crash(42, 0) // strict power failure: only flushed lines persist
	st2, rs, err := store.New(dev, cfg, store.Deps{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Stop()
	for i := range keys {
		got, ok := getNow(t, st2, keys[i])
		if !ok || !bytes.Equal(got, vals[i]) {
			t.Fatalf("key %q after crash: got %q ok=%v (recovery %+v)", keys[i], got, ok, rs)
		}
	}
}

func TestRecoveryStagedWithoutRecordDiscarded(t *testing.T) {
	st, dev, cfg := newStore(t, 1)
	// Stage two writes and never commit: the crash must discard them whole
	// — staged objects carry no FlagValid, so recovery skips them.
	if _, s := st.TxnStage(nil, 99, []byte("ghost-a"), []byte("gv-a")); s != store.StatusOK {
		t.Fatalf("stage: %v", s)
	}
	if _, s := st.TxnStage(nil, 99, []byte("ghost-b"), []byte("gv-b")); s != store.StatusOK {
		t.Fatalf("stage: %v", s)
	}
	st.Stop()
	dev.Crash(43, 0)
	st2, rs, err := store.New(dev, cfg, store.Deps{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Stop()
	if rs.TxnsReplayed != 0 {
		t.Fatalf("recordless stages replayed: %+v", rs)
	}
	for _, key := range [][]byte{[]byte("ghost-a"), []byte("ghost-b")} {
		if got, ok := getNow(t, st2, key); ok {
			t.Fatalf("staged-only key %q recovered as %q", key, got)
		}
	}
}

// TestQuickSnapshotNeverObservesDeadVersion is the satellite property
// test: under random interleavings of single-key puts and multi-key
// commits, a read bounded by a pinned cut must return exactly the value
// the model held at pin time — never a version newer than the cut
// (cut-sequence-dead) and never one that was already superseded at the
// cut.
func TestQuickSnapshotNeverObservesDeadVersion(t *testing.T) {
	property := func(seed uint64, opByte uint8) bool {
		nOps := 4 + int(opByte%28)
		st, _, _ := newStore(t, 2)
		defer st.Stop()
		m := txn.NewManager(st, nil)
		rng := rand.New(rand.NewPCG(seed, 0x5eed))
		keys := make([][]byte, 6)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("qk-%d", i))
		}
		model := make(map[string][]byte)
		type cut struct {
			vec   []uint64
			state map[string][]byte
		}
		var cuts []cut
		for op := 0; op < nOps; op++ {
			switch rng.IntN(3) {
			case 0: // single-key put through the transactional path's substrate
				k := keys[rng.IntN(len(keys))]
				v := []byte(fmt.Sprintf("solo-%d-%d", seed, op))
				if _, _, s := m.Commit(nil, [][]byte{k}, [][]byte{v}); s != store.StatusOK {
					return false
				}
				model[string(k)] = v
			case 1: // multi-key commit
				n := 2 + rng.IntN(3)
				base := rng.IntN(len(keys))
				ck := make([][]byte, n)
				cv := make([][]byte, n)
				for j := 0; j < n; j++ {
					ck[j] = keys[(base+j)%len(keys)]
					cv[j] = []byte(fmt.Sprintf("txn-%d-%d-%d", seed, op, j))
				}
				if _, _, s := m.Commit(nil, ck, cv); s != store.StatusOK {
					return false
				}
				for j := range ck {
					model[string(ck[j])] = cv[j]
				}
			default: // pin a cut with the model's state frozen alongside
				state := make(map[string][]byte, len(model))
				for k, v := range model {
					state[k] = v
				}
				cuts = append(cuts, cut{vec: st.SeqVector(), state: state})
			}
		}
		// Every pinned cut, read after all the later writes: the snapshot
		// must still serve exactly the state frozen at pin time.
		for _, c := range cuts {
			for _, key := range keys {
				sh := st.ShardFor(key)
				val, seq, s := st.Shard(sh).GetAt(nil, key, c.vec[sh])
				want, ok := c.state[string(key)]
				if !ok {
					if s != store.StatusNotFound {
						return false // observed a version born after the cut
					}
					continue
				}
				if s != store.StatusOK || !bytes.Equal(val, want) || seq > c.vec[sh] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
