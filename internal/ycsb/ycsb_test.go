package ycsb

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestZipfianRange(t *testing.T) {
	z := NewZipfian(1000)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10000; i++ {
		v := z.Next(rng)
		if v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// With theta=0.99 over 1000 items, the most popular item should take
	// a few percent of the mass and the top-10 a large share.
	z := NewZipfian(1000)
	rng := rand.New(rand.NewPCG(3, 4))
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	if counts[0] < draws/20 {
		t.Fatalf("head item has %d draws; distribution not skewed", counts[0])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/draws < 0.30 {
		t.Fatalf("top-10 share = %.2f, want >= 0.30", float64(top10)/draws)
	}
	// Monotonic-ish decay between head and mid-range.
	if counts[0] < counts[100] {
		t.Fatal("rank 0 less popular than rank 100")
	}
}

func TestScrambledZipfianSpreadsHead(t *testing.T) {
	z := NewScrambledZipfian(1000)
	rng := rand.New(rand.NewPCG(5, 6))
	counts := make(map[uint64]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	// Still skewed: some key should dominate...
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < draws/20 {
		t.Fatalf("max key has %d draws; scrambling destroyed the skew", max)
	}
	// ...but the hot key need not be key 0 (it is spread by the hash).
	if counts[0] == max {
		t.Log("hot key happens to be 0; acceptable but unusual")
	}
}

func TestZipfianDeterministicPerSeed(t *testing.T) {
	draw := func(seed uint64) []uint64 {
		z := NewScrambledZipfian(500)
		rng := rand.New(rand.NewPCG(seed, 0))
		out := make([]uint64, 100)
		for i := range out {
			out[i] = z.Next(rng)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different stream")
		}
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(100)
	rng := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Next(rng)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-1000) > 250 {
			t.Fatalf("bucket %d has %d draws; not uniform", i, c)
		}
	}
}

func TestLatestSkewsTowardNewest(t *testing.T) {
	l := NewLatest(1000)
	rng := rand.New(rand.NewPCG(9, 9))
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := l.Next(rng)
		if v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[999] < draws/20 {
		t.Fatalf("newest item drew %d; not skewed toward latest", counts[999])
	}
	if counts[999] < counts[0] {
		t.Fatal("oldest more popular than newest")
	}
	// Extending shifts the hot spot.
	l.Extend(2000)
	hot := 0
	for i := 0; i < draws; i++ {
		if l.Next(rng) >= 1000 {
			hot++
		}
	}
	if hot < draws/2 {
		t.Fatalf("after Extend only %d/%d draws in the new range", hot, draws)
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(42, 32)
	if len(k) != 32 {
		t.Fatalf("key length %d", len(k))
	}
	if string(k[:6]) != "user42" {
		t.Fatalf("key prefix %q", k[:6])
	}
	f := func(i uint32) bool { return len(Key(uint64(i), 32)) == 32 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorMixRatios(t *testing.T) {
	for _, mix := range Workloads() {
		g := NewGenerator(mix, 1000, 32, 128, 9)
		gets := 0
		const n = 20000
		for i := 0; i < n; i++ {
			op, key, val := g.Next()
			if len(key) != 32 {
				t.Fatalf("bad key length %d", len(key))
			}
			if op == OpGet {
				gets++
				if val != nil {
					t.Fatal("GET carries a value")
				}
			} else if len(val) != 128 {
				t.Fatalf("bad value length %d", len(val))
			}
		}
		got := float64(gets) / n
		if math.Abs(got-mix.GetFrac) > 0.02 {
			t.Fatalf("%s: get fraction %.3f, want %.2f", mix.Name, got, mix.GetFrac)
		}
	}
}

func TestWorkloadsOrder(t *testing.T) {
	w := Workloads()
	if len(w) != 4 || w[0].GetFrac != 1 || w[3].GetFrac != 0 {
		t.Fatalf("unexpected workload list: %+v", w)
	}
}
