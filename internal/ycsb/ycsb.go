// Package ycsb generates YCSB-style workloads (Cooper et al., SoCC'10) for
// the benchmark harness: the paper evaluates with four mixes following a
// long-tailed Zipfian request distribution (§5.2):
//
//	YCSB-C      100% GET          (read-only)
//	YCSB-B      95% GET / 5% PUT  (read-intensive)
//	YCSB-A      50% GET / 50% PUT (write-intensive)
//	Update-only 100% PUT
//
// The Zipfian key chooser is the standard YCSB generator: Gray et al.'s
// incremental algorithm with the usual scrambling hash so popular keys are
// spread across the key space.
package ycsb

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Op is a workload operation kind.
type Op int

// Operation kinds.
const (
	OpGet Op = iota
	OpPut
)

// Mix is an operation mix.
type Mix struct {
	Name    string
	GetFrac float64
}

// The paper's four workloads.
var (
	WorkloadC          = Mix{Name: "YCSB-C (read-only)", GetFrac: 1.0}
	WorkloadB          = Mix{Name: "YCSB-B (read-intensive)", GetFrac: 0.95}
	WorkloadA          = Mix{Name: "YCSB-A (write-intensive)", GetFrac: 0.50}
	WorkloadUpdateOnly = Mix{Name: "Update-only", GetFrac: 0.0}
)

// Workloads lists the paper's mixes in Figure 9 order (a-d).
func Workloads() []Mix {
	return []Mix{WorkloadC, WorkloadB, WorkloadA, WorkloadUpdateOnly}
}

// ZipfianConstant is YCSB's default skew.
const ZipfianConstant = 0.99

// Zipfian draws items in [0, n) with a Zipfian distribution using Gray et
// al.'s method ("Quickly generating billion-record synthetic databases",
// SIGMOD'94), as in the YCSB core generator.
type Zipfian struct {
	items          uint64
	theta          float64
	zeta2, zetaN   float64
	alpha, eta     float64
	scrambled      bool
	scrambledItems uint64
}

// NewZipfian returns a plain Zipfian generator over [0, n).
func NewZipfian(n uint64) *Zipfian {
	z := &Zipfian{items: n, theta: ZipfianConstant}
	z.zeta2 = zetaStatic(2, z.theta)
	z.zetaN = zetaStatic(n, z.theta)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

// NewScrambledZipfian spreads the Zipfian head across the key space with a
// 64-bit mix, as YCSB's ScrambledZipfianGenerator does.
func NewScrambledZipfian(n uint64) *Zipfian {
	z := NewZipfian(n)
	z.scrambled = true
	z.scrambledItems = n
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next item.
func (z *Zipfian) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetaN
	var v uint64
	switch {
	case uz < 1.0:
		v = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		v = 1
	default:
		v = uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if v >= z.items {
		v = z.items - 1
	}
	if z.scrambled {
		return mix64(v) % z.scrambledItems
	}
	return v
}

// mix64 is the SplitMix64 finalizer, a strong 64-bit mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Uniform draws items uniformly from [0, n).
type Uniform struct{ items uint64 }

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(n uint64) *Uniform { return &Uniform{items: n} }

// Next draws the next item.
func (u *Uniform) Next(rng *rand.Rand) uint64 { return rng.Uint64N(u.items) }

// Latest draws items skewed toward the most recently inserted, like
// YCSB's SkewedLatestGenerator: the draw is n-1-Zipfian(n), so item n-1
// (the newest) is the most popular. Call Extend as new items are inserted.
type Latest struct {
	n uint64
	z *Zipfian
}

// NewLatest returns a latest-skewed chooser over [0, n).
func NewLatest(n uint64) *Latest {
	return &Latest{n: n, z: NewZipfian(n)}
}

// Extend grows the item space to n (monotonic).
func (l *Latest) Extend(n uint64) {
	if n > l.n {
		l.n = n
		l.z = NewZipfian(n)
	}
}

// Next draws the next item.
func (l *Latest) Next(rng *rand.Rand) uint64 {
	return l.n - 1 - l.z.Next(rng)
}

// Chooser selects keys.
type Chooser interface {
	Next(rng *rand.Rand) uint64
}

// Key formats key index i the YCSB way, padded to the given length.
func Key(i uint64, keyLen int) []byte {
	s := fmt.Sprintf("user%d", i)
	for len(s) < keyLen {
		s += "0"
	}
	return []byte(s[:keyLen])
}

// Generator produces a stream of operations for one client.
type Generator struct {
	Mix     Mix
	Keys    Chooser
	KeyLen  int
	ValLen  int
	rng     *rand.Rand
	valSeed byte
}

// NewGenerator builds a generator with its own deterministic PRNG stream.
func NewGenerator(mix Mix, nkeys uint64, keyLen, valLen int, seed uint64) *Generator {
	return &Generator{
		Mix:    mix,
		Keys:   NewScrambledZipfian(nkeys),
		KeyLen: keyLen,
		ValLen: valLen,
		rng:    rand.New(rand.NewPCG(seed, 0xfeed)),
	}
}

// Next returns the next operation, its key, and (for puts) a fresh value.
func (g *Generator) Next() (Op, []byte, []byte) {
	key := Key(g.Keys.Next(g.rng), g.KeyLen)
	if g.rng.Float64() < g.Mix.GetFrac {
		return OpGet, key, nil
	}
	g.valSeed++
	val := make([]byte, g.ValLen)
	for i := range val {
		val[i] = g.valSeed + byte(i)
	}
	return OpPut, key, val
}
