package obs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`quo"te`, `quo\"te`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{`all"three\of` + "\nthem", `all\"three\\of\nthem`},
		{"", ""},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEscapedLabelsRender(t *testing.T) {
	r := New("efactory", 1, []string{"put"}, 4)
	r.AddGauge("efactory_weird", "", map[string]string{"path": `C:\dir` + "\n\"x\""}, func() float64 { return 1 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `efactory_weird{path="C:\\dir\n\"x\""} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("rendered output missing escaped label line %q:\n%s", want, b.String())
	}
}

// TestClusterSeriesNamesGolden pins the first-class cluster series names:
// dashboards and the CI smoke test scrape these exact strings.
func TestClusterSeriesNamesGolden(t *testing.T) {
	r := New("efactory", 1, []string{"put"}, 4)
	r.Observe(0, 0, 1000)
	r.AddGauge("efactory_cluster_epoch", "Current cluster-map epoch.", nil, func() float64 { return 3 })
	r.AddCounter("efactory_wrong_epoch_rejects_total", "Routed ops rejected with StWrongEpoch.", nil, func() float64 { return 7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	golden := []string{
		"# TYPE efactory_op_latency_ns histogram",
		`efactory_op_latency_ns_bucket{shard="0",op="put",le="1024"} 1`,
		`efactory_op_latency_ns_count{shard="0",op="put"} 1`,
		"# TYPE efactory_cluster_epoch gauge",
		"efactory_cluster_epoch 3",
		"# TYPE efactory_wrong_epoch_rejects_total counter",
		"efactory_wrong_epoch_rejects_total 7",
		"efactory_trace_events_total 0",
	}
	for _, want := range golden {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestMergeHistEqualsReplay checks the cluster-merge contract under
// testing/quick: merging per-instance histogram snapshots is equivalent
// to replaying every sample into one histogram.
func TestMergeHistEqualsReplay(t *testing.T) {
	f := func(seed int64, split uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(split)%6 // 2..7 instances
		parts := make([]*Histogram, n)
		for i := range parts {
			parts[i] = &Histogram{}
		}
		var whole Histogram
		for i := 0; i < 500; i++ {
			ns := uint64(rng.Int63n(int64(1) << uint(6+rng.Intn(34))))
			parts[rng.Intn(n)].Observe(ns)
			whole.Observe(ns)
		}
		snaps := make([]HistSnapshot, n)
		for i, p := range parts {
			snaps[i] = p.Snapshot()
		}
		merged := MergeHist(snaps...)
		want := whole.Snapshot()
		if merged.Count != want.Count || merged.SumNS != want.SumNS {
			return false
		}
		for i := range want.Counts {
			if merged.Counts[i] != want.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeHistExemplarsSurvive(t *testing.T) {
	var a, b Histogram
	a.ObserveTraced(100, 0xa1)
	b.ObserveTraced(100, 0xb2)
	b.ObserveTraced(1<<20, 0xb3)
	m := MergeHist(a.Snapshot(), b.Snapshot())
	if m.Count != 3 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Exemplars == nil {
		t.Fatal("merged snapshot lost exemplars")
	}
	if got := m.Exemplars[bucketIndex(100)]; got != 0xb2 {
		t.Fatalf("shared bucket exemplar = %x, want last-merged b2", got)
	}
	if got := m.Exemplars[bucketIndex(1<<20)]; got != 0xb3 {
		t.Fatalf("tail bucket exemplar = %x, want b3", got)
	}
}

func TestMergeSnapshotsFoldsInstances(t *testing.T) {
	mk := func(instance string, n int) Snapshot {
		r := New("efactory", 2, []string{"put", "get"}, 4)
		r.SetInstance(instance)
		for i := 0; i < n; i++ {
			r.Observe(i%2, 0, 500)
		}
		r.AddCounter("efactory_wrong_epoch_rejects_total", "", nil, func() float64 { return float64(n) })
		return r.Snapshot()
	}
	a, b := mk("a", 3), mk("b", 5)
	m := MergeSnapshots(a, b)
	if got := m.MergedOp("put"); got.Count != 8 {
		t.Fatalf("merged put count = %d, want 8", got.Count)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("merged shard rows = %d, want 4 (2 instances x 2 shards)", len(m.Shards))
	}
	if v, ok := m.CounterValue("efactory_wrong_epoch_rejects_total", nil); !ok || v != 8 {
		t.Fatalf("merged reject counter = %v (ok=%v), want 8", v, ok)
	}
}

func TestRingEventsCarryInstanceAndEpoch(t *testing.T) {
	r := New("efactory", 1, []string{"put"}, 4)
	r.Trace(Event{Op: "before"})
	r.SetInstance("a")
	r.SetEpoch(2)
	r.Trace(Event{Op: "after"})
	r.Trace(Event{Op: "own", Instance: "x", Epoch: 9})
	ev := r.Ring().Dump()
	if len(ev) != 3 {
		t.Fatalf("ring holds %d events", len(ev))
	}
	if ev[0].Instance != "" || ev[0].Epoch != 0 {
		t.Fatalf("pre-cluster event stamped: %+v", ev[0])
	}
	if ev[1].Instance != "a" || ev[1].Epoch != 2 {
		t.Fatalf("event not stamped: %+v", ev[1])
	}
	if ev[2].Instance != "x" || ev[2].Epoch != 9 {
		t.Fatalf("event's own identity overwritten: %+v", ev[2])
	}
}
