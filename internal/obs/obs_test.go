package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
)

// refIndex is the obvious O(n) bucket search bucketIndex must agree with.
func refIndex(ns uint64) int {
	for i, b := range bucketBounds {
		if ns <= b {
			return i
		}
	}
	return NumBuckets - 1
}

func TestBucketIndexMatchesLinearSearch(t *testing.T) {
	cases := []uint64{0, 1, 63, 64, 65, 95, 96, 97, 127, 128, 129, 191, 192, 193, 1000, 4096, 1 << 20, 1<<37 - 1, 1 << 37, 3 << 36, 3<<36 + 1, 1 << 40, math.MaxUint64}
	for o := 0; o < 64; o++ {
		cases = append(cases, uint64(1)<<o, uint64(1)<<o+1, uint64(1)<<o-1)
	}
	for _, ns := range cases {
		if got, want := bucketIndex(ns), refIndex(ns); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", ns, got, want)
		}
	}
}

func TestBoundsMonotonic(t *testing.T) {
	b := Bounds()
	if len(b) != numFinite {
		t.Fatalf("len(Bounds()) = %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 samples uniform on [1µs, 10µs).
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(1000 + i*9))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	med := s.Quantile(0.5)
	if med < 4000 || med > 7500 {
		t.Errorf("median = %.0f ns, want ~5500 within bucket resolution", med)
	}
	p99 := s.Quantile(0.99)
	if p99 < med {
		t.Errorf("p99 %.0f < median %.0f", p99, med)
	}
	if q0 := s.Quantile(0); q0 <= 0 || q0 > 2000 {
		t.Errorf("q0 = %.0f, want within the first occupied bucket", q0)
	}
	if q1 := s.Quantile(1); q1 < p99 {
		t.Errorf("q1 %.0f < p99 %.0f", q1, p99)
	}
	if mean := s.Mean(); mean < 4000 || mean > 7000 {
		t.Errorf("mean = %.0f, want ~5495", mean)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should quantile to 0")
	}
	h.Observe(500)
	h.Reset()
	if h.Count() != 0 {
		t.Fatalf("count after reset = %d", h.Count())
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	a.Observe(200)
	b.Observe(1 << 30)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 || sa.SumNS != 300+1<<30 {
		t.Fatalf("merged count=%d sum=%d", sa.Count, sa.SumNS)
	}
	var total uint64
	for _, c := range sa.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged bucket total = %d", total)
	}
	// Merging into a zero-valued snapshot must work too.
	var zero HistSnapshot
	zero.Merge(sb)
	if zero.Count != 1 {
		t.Fatalf("merge into zero: count = %d", zero.Count)
	}
}

func TestRingWrapsAndDumpsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Append(Event{TimeNS: uint64(i), Shard: i, Op: "put", Outcome: "invalidated"})
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d", r.Total())
	}
	d := r.Dump()
	if len(d) != 4 {
		t.Fatalf("dump len = %d", len(d))
	}
	for i, e := range d {
		if e.TimeNS != uint64(3+i) {
			t.Fatalf("dump[%d].TimeNS = %d, want %d", i, e.TimeNS, 3+i)
		}
	}
}

func newTestRegistry() *Registry {
	r := New("efactory", 2, []string{"put", "get"}, 16)
	r.Observe(0, 0, 1500)
	r.Observe(0, 0, 2500)
	r.Observe(1, 1, 800)
	r.AddGauge("efactory_durability_lag_bytes", "unverified backlog", map[string]string{"shard": "0"}, func() float64 { return 4096 })
	r.AddGauge("efactory_durability_lag_bytes", "unverified backlog", map[string]string{"shard": "1"}, func() float64 { return 512 })
	r.AddCounter("efactory_ops_total", "ops", map[string]string{"shard": "0", "op": "put"}, func() float64 { return 2 })
	r.Trace(Event{TimeNS: 1, Shard: 0, Op: "get", Outcome: "rolled_back", KeyHash: 42, Seq: 7})
	return r
}

func TestRegistrySnapshotRoundTrip(t *testing.T) {
	s := newTestRegistry().Snapshot()
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.MergedOp("put").Count != 2 {
		t.Fatalf("merged put count = %d", got.MergedOp("put").Count)
	}
	if got.MergedOp("get").Count != 1 {
		t.Fatalf("merged get count = %d", got.MergedOp("get").Count)
	}
	if v, ok := got.GaugeValue("efactory_durability_lag_bytes"); !ok || v != 4608 {
		t.Fatalf("gauge sum = %v, %v", v, ok)
	}
	if got.TraceTotal != 1 {
		t.Fatalf("trace total = %d", got.TraceTotal)
	}
}

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := newTestRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE efactory_op_latency_ns histogram",
		`efactory_op_latency_ns_bucket{shard="0",op="put",le="+Inf"} 2`,
		`efactory_op_latency_ns_count{shard="0",op="put"} 2`,
		`efactory_op_latency_ns_sum{shard="0",op="put"} 4000`,
		`efactory_op_latency_ns_count{shard="1",op="get"} 1`,
		"# TYPE efactory_durability_lag_bytes gauge",
		`efactory_durability_lag_bytes{shard="0"} 4096`,
		`efactory_durability_lag_bytes{shard="1"} 512`,
		"# TYPE efactory_ops_total counter",
		`efactory_ops_total{op="put",shard="0"} 2`,
		"efactory_trace_events_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// The gauge family header must appear exactly once despite two series.
	if n := strings.Count(out, "# TYPE efactory_durability_lag_bytes gauge"); n != 1 {
		t.Errorf("gauge TYPE header appears %d times", n)
	}
	// Cumulative bucket counts must be non-decreasing.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `efactory_op_latency_ns_bucket{shard="0",op="put"`) {
			continue
		}
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("bucket counts decreased: %d after %d", cum, prev)
		}
		prev = cum
	}
}
