package obs

import "sync"

// Event is one structured trace record. Events are reserved for the rare,
// debugging-relevant transitions (invalidations, rollbacks, allocation
// failures, cleaning boundaries), not the per-op hot path, so a mutex-
// guarded ring is cheap enough and dumps are exact.
type Event struct {
	TimeNS   uint64 `json:"t_ns"`               // sink clock (virtual or wall)
	Shard    int    `json:"shard"`              // owning shard
	Op       string `json:"op"`                 // operation that produced the event
	Outcome  string `json:"outcome"`            // what happened
	KeyHash  uint64 `json:"key_hash"`           // hash of the key involved (0 if none)
	Seq      uint64 `json:"seq,omitempty"`      // version sequence number (0 if none)
	Instance string `json:"instance,omitempty"` // cluster instance name ("" unclustered)
	Epoch    uint64 `json:"epoch,omitempty"`    // cluster-map epoch at append time (0 = no map)
}

// Ring is a bounded ring buffer of trace events: the newest capacity events
// are retained, older ones are overwritten.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // slot the next append goes to
	total uint64 // events ever appended
}

// NewRing returns a ring retaining the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, evicting the oldest when full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events ever appended (dropped ones included).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump returns the retained events, oldest first.
func (r *Ring) Dump() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}
