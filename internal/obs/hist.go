package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry: two log-spaced buckets per power of two
// (bounds 2^k and 3·2^(k-1)), covering minBound ns up to ~275 s, plus one
// overflow bucket. The layout is fixed so histograms from different shards,
// transports, or processes merge by plain element-wise addition, and so the
// hot-path index computation is two integer ops — no search, no floats.
const (
	minOctave  = 6  // 2^6 = 64 ns: below the cheapest engine op on either clock
	maxOctave  = 37 // 2^37 ns ≈ 137 s
	numFinite  = 2 * (maxOctave - minOctave + 1)
	NumBuckets = numFinite + 1 // + overflow
)

// bucketBounds[i] is the inclusive upper bound (ns) of bucket i; the
// overflow bucket has no bound.
var bucketBounds = func() [numFinite]uint64 {
	var b [numFinite]uint64
	for o := minOctave; o <= maxOctave; o++ {
		b[2*(o-minOctave)] = 1 << o
		b[2*(o-minOctave)+1] = 3 << (o - 1)
	}
	return b
}()

// Bounds returns the finite bucket upper bounds in nanoseconds (shared by
// every Histogram; the last bucket is the +Inf overflow).
func Bounds() []uint64 {
	out := make([]uint64, numFinite)
	copy(out[:], bucketBounds[:])
	return out
}

// bucketIndex maps a duration in ns to its bucket.
func bucketIndex(ns uint64) int {
	if ns <= 1<<minOctave {
		return 0
	}
	o := bits.Len64(ns-1) - 1 // octave of the smallest power of two >= ns, minus 1
	if o > maxOctave {
		return NumBuckets - 1
	}
	idx := 2 * (o - minOctave)
	if ns > 3<<(o-1) {
		idx++
	}
	return idx + 1
}

// Histogram is a fixed-geometry, log-spaced latency histogram. Observe is
// lock-free — one atomic add per counter touched — so it is safe on the
// TCP transport's hot path and free of scheduling side effects under the
// deterministic simulator. The zero value is ready to use. Histograms must
// not be copied after first use.
type Histogram struct {
	count     atomic.Uint64
	sum       atomic.Uint64
	counts    [NumBuckets]atomic.Uint64
	exemplars [NumBuckets]atomic.Uint64 // trace ID of the last traced sample per bucket
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns uint64) {
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// ObserveTraced records one duration and attaches traceID as the
// bucket's exemplar (last writer wins), so a histogram tail bucket can
// name a concrete retained trace to go look at. traceID 0 degrades to a
// plain Observe.
func (h *Histogram) ObserveTraced(ns, traceID uint64) {
	i := bucketIndex(ns)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	if traceID != 0 {
		h.exemplars[i].Store(traceID)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy. Concurrent Observes may land
// between field loads; the drift is at most a few in-flight samples.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:  h.count.Load(),
		SumNS:  h.sum.Load(),
		Counts: make([]uint64, NumBuckets),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		if ex := h.exemplars[i].Load(); ex != 0 {
			if s.Exemplars == nil {
				s.Exemplars = make([]uint64, NumBuckets)
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// Reset zeroes every counter (between benchmark phases).
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.counts {
		h.counts[i].Store(0)
		h.exemplars[i].Store(0)
	}
}

// HistSnapshot is an immutable, JSON-encodable copy of a Histogram. Counts
// always has NumBuckets elements, aligned with Bounds() plus the overflow
// bucket, so snapshots from any source merge element-wise.
type HistSnapshot struct {
	Count     uint64   `json:"count"`
	SumNS     uint64   `json:"sum_ns"`
	Counts    []uint64 `json:"counts,omitempty"`
	Exemplars []uint64 `json:"exemplars,omitempty"` // per-bucket trace IDs (0 = none)
}

// Merge folds o into s (e.g. aggregating shards). o's exemplars win
// where both sides have one (last merged = most recently seen source).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNS += o.SumNS
	if len(o.Counts) == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Counts = make([]uint64, NumBuckets)
	}
	for i := range s.Counts {
		if i < len(o.Counts) {
			s.Counts[i] += o.Counts[i]
		}
	}
	if len(o.Exemplars) == 0 {
		return
	}
	if len(s.Exemplars) == 0 {
		s.Exemplars = make([]uint64, NumBuckets)
	}
	for i := range s.Exemplars {
		if i < len(o.Exemplars) && o.Exemplars[i] != 0 {
			s.Exemplars[i] = o.Exemplars[i]
		}
	}
}

// MergeHist folds any number of histogram snapshots — typically the same
// op's histogram fetched from every instance of a cluster — into one.
// The fixed bucket geometry makes this plain element-wise addition, so
// merging N instances' histograms is equivalent to having replayed every
// sample into a single histogram.
func MergeHist(hs ...HistSnapshot) HistSnapshot {
	var out HistSnapshot
	for _, h := range hs {
		out.Merge(h)
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q <= 1) in nanoseconds by
// linear interpolation within the owning bucket. q <= 0 returns the lower
// edge of the first occupied bucket, q >= 1 the upper bound of the last.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo, hi := bucketEdges(i)
		// Interpolate position within this bucket's count.
		frac := (rank - prev) / float64(c)
		return lo + frac*(hi-lo)
	}
	// Unreachable unless counts drifted from Count; fall back to the top.
	_, hi := bucketEdges(len(s.Counts) - 1)
	return hi
}

// Mean returns the arithmetic mean in nanoseconds.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// bucketEdges returns bucket i's [lower, upper] bounds in ns. The overflow
// bucket is treated as one octave wide past the last finite bound.
func bucketEdges(i int) (lo, hi float64) {
	if i >= numFinite {
		last := float64(bucketBounds[numFinite-1])
		return last, 2 * last
	}
	hi = float64(bucketBounds[i])
	if i == 0 {
		return 0, hi
	}
	return float64(bucketBounds[i-1]), hi
}
