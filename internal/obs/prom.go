package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): per-shard, per-op latency histograms as
// <prefix>_op_latency_ns{shard,op}, then every registered gauge and
// counter, then the trace-ring depth.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	histName := r.prefix + "_op_latency_ns"
	fmt.Fprintf(bw, "# HELP %s Engine operation latency (ns; virtual time in simulation, wall clock over TCP).\n", histName)
	fmt.Fprintf(bw, "# TYPE %s histogram\n", histName)
	for sh := 0; sh < r.shards; sh++ {
		for op, name := range r.opNames {
			h := r.Hist(sh, op)
			if h.Count() == 0 {
				continue
			}
			s := h.Snapshot()
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < numFinite {
					le = strconv.FormatUint(bucketBounds[i], 10)
				}
				fmt.Fprintf(bw, "%s_bucket{shard=\"%d\",op=\"%s\",le=\"%s\"} %d\n", histName, sh, name, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum{shard=\"%d\",op=\"%s\"} %d\n", histName, sh, name, s.SumNS)
			fmt.Fprintf(bw, "%s_count{shard=\"%d\",op=\"%s\"} %d\n", histName, sh, name, s.Count)
		}
	}
	r.mu.Lock()
	gauges, counters := r.gauges, r.counters
	r.mu.Unlock()
	writeMetrics(bw, "gauge", gauges)
	writeMetrics(bw, "counter", counters)
	fmt.Fprintf(bw, "# HELP %s_trace_events_total Structured trace events appended to the ring.\n", r.prefix)
	fmt.Fprintf(bw, "# TYPE %s_trace_events_total counter\n", r.prefix)
	fmt.Fprintf(bw, "%s_trace_events_total %d\n", r.prefix, r.ring.Total())
	return bw.Flush()
}

// writeMetrics renders gauges or counters grouped by name, so each metric
// family gets exactly one HELP/TYPE header.
func writeMetrics(w io.Writer, typ string, ms []metric) {
	done := make(map[string]bool, len(ms))
	for _, lead := range ms {
		if done[lead.name] {
			continue
		}
		done[lead.name] = true
		if lead.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", lead.name, lead.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", lead.name, typ)
		for _, m := range ms {
			if m.name != lead.name {
				continue
			}
			fmt.Fprintf(w, "%s%s %s\n", m.name, formatLabels(m.labels),
				strconv.FormatFloat(m.fn(), 'g', -1, 64))
		}
	}
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	out := "{"
	for i, k := range sortedLabelKeys(labels) {
		if i > 0 {
			out += ","
		}
		out += k + "=\"" + escapeLabel(labels[k]) + "\""
	}
	return out + "}"
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline must be escaped; every
// other byte passes through. Instance names and file paths routinely
// reach labels, so this is not hypothetical.
func escapeLabel(v string) string {
	for i := 0; i < len(v); i++ {
		if c := v[i]; c == '\\' || c == '"' || c == '\n' {
			var b strings.Builder
			b.Grow(len(v) + 4)
			b.WriteString(v[:i])
			for ; i < len(v); i++ {
				switch v[i] {
				case '\\':
					b.WriteString(`\\`)
				case '"':
					b.WriteString(`\"`)
				case '\n':
					b.WriteString(`\n`)
				default:
					b.WriteByte(v[i])
				}
			}
			return b.String()
		}
	}
	return v
}

// Handler serves the registry over HTTP:
//
//	/metrics      Prometheus text format
//	/debug/vars   the full Snapshot as JSON
//	/debug/trace  the trace ring as a JSON event array, oldest first
//	/debug/pprof  the standard Go profiling endpoints
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(r.ring.Dump())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
