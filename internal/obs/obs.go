// Package obs is the engine-wide telemetry layer: per-shard, per-op
// latency histograms, callback gauges, monotonic counters, and a bounded
// trace ring, rendered as a Prometheus text endpoint, an expvar-style JSON
// snapshot, or a wire-transportable Snapshot value.
//
// The package is transport- and engine-neutral: it never imports the
// storage engine. The engine feeds it durations measured on its CostSink
// clock, so the same instrumentation records virtual time under the
// discrete-event simulator and wall-clock time under the TCP server.
// Observe is lock-free (atomic adds on fixed buckets); gauges and counters
// are closures evaluated only at scrape/snapshot time, so steady-state
// cost on the hot path is exactly one bucket increment plus two atomic
// adds per observation.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds one subsystem's metrics: a [shards][ops] histogram
// matrix, registered gauges/counters, and the trace ring.
type Registry struct {
	prefix  string
	opNames []string
	shards  int
	hists   []Histogram // flat [shard*len(opNames) + op]
	ring    *Ring

	instance atomic.Pointer[string] // stamped onto ring events (nil = unclustered)
	epoch    atomic.Uint64          // cluster-map epoch stamped onto ring events

	mu       sync.Mutex // guards metric registration only
	gauges   []metric
	counters []metric
}

// metric is one registered gauge or counter: a name, a fixed label set,
// and a closure evaluated at scrape time.
type metric struct {
	name   string
	help   string
	labels map[string]string
	fn     func() float64
}

// New builds a registry for shards shards and the given op names, with a
// trace ring retaining ringCap events. prefix namespaces every rendered
// metric (e.g. "efactory").
func New(prefix string, shards int, opNames []string, ringCap int) *Registry {
	if shards <= 0 {
		shards = 1
	}
	return &Registry{
		prefix:  prefix,
		opNames: opNames,
		shards:  shards,
		hists:   make([]Histogram, shards*len(opNames)),
		ring:    NewRing(ringCap),
	}
}

// Shards returns the shard count the registry was built for.
func (r *Registry) Shards() int { return r.shards }

// OpNames returns the op-name table (index == op).
func (r *Registry) OpNames() []string { return r.opNames }

// Ring returns the trace ring.
func (r *Registry) Ring() *Ring { return r.ring }

// Hist returns the histogram for (shard, op).
func (r *Registry) Hist(shard, op int) *Histogram {
	return &r.hists[shard*len(r.opNames)+op]
}

// Observe records one latency sample in nanoseconds for (shard, op).
func (r *Registry) Observe(shard, op int, ns uint64) {
	r.hists[shard*len(r.opNames)+op].Observe(ns)
}

// SetInstance names the deployment this registry observes. Every ring
// event appended afterwards carries the name, so rings dumped from
// different cluster instances stay attributable after they are merged.
func (r *Registry) SetInstance(name string) { r.instance.Store(&name) }

// SetEpoch records the current cluster-map epoch; subsequent ring events
// carry it. Call on every map install so events straddling a migration
// are attributable to the map they were served under.
func (r *Registry) SetEpoch(epoch uint64) { r.epoch.Store(epoch) }

// Trace appends a structured trace event, stamping the registry's
// instance name and cluster epoch onto it (when set and the event does
// not already carry its own).
func (r *Registry) Trace(e Event) {
	if e.Instance == "" {
		if p := r.instance.Load(); p != nil {
			e.Instance = *p
		}
	}
	if e.Epoch == 0 {
		e.Epoch = r.epoch.Load()
	}
	r.ring.Append(e)
}

// AddGauge registers a gauge evaluated at scrape/snapshot time. labels may
// be nil; the map is retained, not copied.
func (r *Registry) AddGauge(name, help string, labels map[string]string, fn func() float64) {
	r.mu.Lock()
	r.gauges = append(r.gauges, metric{name: name, help: help, labels: labels, fn: fn})
	r.mu.Unlock()
}

// AddCounter registers a monotonically non-decreasing counter evaluated at
// scrape/snapshot time.
func (r *Registry) AddCounter(name, help string, labels map[string]string, fn func() float64) {
	r.mu.Lock()
	r.counters = append(r.counters, metric{name: name, help: help, labels: labels, fn: fn})
	r.mu.Unlock()
}

// MetricValue is one evaluated gauge or counter.
type MetricValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Snapshot is a point-in-time, JSON-encodable copy of the whole registry,
// suitable for the TMetrics wire RPC and /debug/vars. Ops lists the op
// names; Shards[s][op] holds that shard's histogram for ops with at least
// one sample.
type Snapshot struct {
	BucketsNS  []uint64                  `json:"buckets_ns"`
	Ops        []string                  `json:"ops"`
	Shards     []map[string]HistSnapshot `json:"shards"`
	Gauges     []MetricValue             `json:"gauges"`
	Counters   []MetricValue             `json:"counters"`
	TraceTotal uint64                    `json:"trace_total"`
}

// Snapshot evaluates every gauge and counter and copies every histogram.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		BucketsNS:  Bounds(),
		Ops:        r.opNames,
		Shards:     make([]map[string]HistSnapshot, r.shards),
		TraceTotal: r.ring.Total(),
	}
	for sh := 0; sh < r.shards; sh++ {
		m := make(map[string]HistSnapshot)
		for op, name := range r.opNames {
			h := r.Hist(sh, op)
			if h.Count() > 0 {
				m[name] = h.Snapshot()
			}
		}
		s.Shards[sh] = m
	}
	r.mu.Lock()
	gauges, counters := r.gauges, r.counters
	r.mu.Unlock()
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: g.name, Labels: g.labels, Value: g.fn()})
	}
	for _, c := range counters {
		s.Counters = append(s.Counters, MetricValue{Name: c.name, Labels: c.labels, Value: c.fn()})
	}
	return s
}

// MergedOp folds one op's histogram across every shard of a snapshot.
func (s Snapshot) MergedOp(op string) HistSnapshot {
	var out HistSnapshot
	for _, sh := range s.Shards {
		if h, ok := sh[op]; ok {
			out.Merge(h)
		}
	}
	return out
}

// MergeSnapshots folds snapshots from several instances into one view:
// shard histogram maps are concatenated (shard indices become per-source
// rows, so MergedOp folds across every instance), gauges and counters
// are concatenated (GaugeValue/CounterValue already sum duplicates), and
// trace totals add. Ops and bucket geometry are taken from the first
// snapshot with any; mixed geometries are the caller's bug.
func MergeSnapshots(ss ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range ss {
		if out.Ops == nil && s.Ops != nil {
			out.Ops = s.Ops
			out.BucketsNS = s.BucketsNS
		}
		out.Shards = append(out.Shards, s.Shards...)
		out.Gauges = append(out.Gauges, s.Gauges...)
		out.Counters = append(out.Counters, s.Counters...)
		out.TraceTotal += s.TraceTotal
	}
	return out
}

// GaugeValue returns the sum of every gauge named name (summing across
// shard labels) and whether at least one was found.
func (s Snapshot) GaugeValue(name string) (float64, bool) {
	var total float64
	found := false
	for _, g := range s.Gauges {
		if g.Name == name {
			total += g.Value
			found = true
		}
	}
	return total, found
}

// CounterValue returns the sum of every counter named name whose labels
// include all of match (summing across shard labels and any labels not
// constrained by match), and whether at least one was found. A nil match
// sums every registration of the name.
func (s Snapshot) CounterValue(name string, match map[string]string) (float64, bool) {
	var total float64
	found := false
	for _, c := range s.Counters {
		if c.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if c.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += c.Value
			found = true
		}
	}
	return total, found
}

// sortedLabelKeys renders deterministically.
func sortedLabelKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
