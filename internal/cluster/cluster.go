// Package cluster is the placement layer: it owns every mapping from a
// key to the thing that stores it. Three levels exist, from coarse to
// fine:
//
//   - key → placement group (PGOf): the unit of cluster-wide ownership
//     and migration. A placement group (PG) is a salted hash slice of the
//     keyspace; the ClusterMap assigns each PG to one named instance.
//   - key → instance (Map.InstanceForKey): PG assignment looked up in an
//     epoch-versioned Map.
//   - key → local shard (ShardOf/ShardFor): within one instance, the
//     engine split every transport already used. This helper moved here
//     from internal/kv so the server-side store and both clients route
//     through one exported function instead of three copies of the same
//     finalizer.
//
// The three levels are deliberately decorrelated: BucketIndex consumes
// the raw FNV low bits (hash % buckets), ShardOf re-mixes with a 64-bit
// finalizer, and PGOf salts the hash before the same finalizer so that a
// PG never maps onto a single local shard (a migrated PG's keys spread
// across all of the target's shards, like any other traffic).
package cluster

import "efactory/internal/kv"

// pgSalt decorrelates placement-group selection from shard selection.
// Without it PGOf and ShardOf would apply the same finalizer to the same
// hash, making PG index and shard index equal whenever PGs == Shards.
const pgSalt = 0x9e3779b97f4a7c15

// Mix64 is the 64-bit avalanche finalizer (the murmur3/splitmix tail)
// shared by shard and placement-group routing. FNV-1a distributes its
// low bits well but leaves the high bits nearly constant across short,
// similar keys; the finalizer spreads every input bit across the word.
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ShardOf maps a key hash to its owning local shard. The hash is
// re-mixed first: shard routing must not reuse the raw low bits because
// BucketIndex consumes them (hash % buckets) — that would make every
// shard's table see only a 1/Shards-dense stripe of bucket indexes.
func ShardOf(hash uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(Mix64(hash) % uint64(shards))
}

// ShardFor is the one key→shard helper every layer shares: the store's
// request fan-out, the simulated client, and the TCP client all call
// this, so their splits can never drift apart.
func ShardFor(key []byte, shards int) int {
	return ShardOf(kv.HashKey(key), shards)
}

// PGOf maps a key hash to its placement group. The salt keeps PG choice
// decorrelated from both bucket choice (raw low bits) and shard choice
// (unsalted finalizer).
func PGOf(hash uint64, pgs int) int {
	if pgs <= 1 {
		return 0
	}
	return int(Mix64(hash^pgSalt) % uint64(pgs))
}

// PGForKey maps a key to its placement group.
func PGForKey(key []byte, pgs int) int {
	return PGOf(kv.HashKey(key), pgs)
}
