package cluster

import (
	"fmt"
	"testing"

	"efactory/internal/kv"
)

func TestShardOfBoundsAndSpread(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		counts := make([]int, shards)
		for i := 0; i < 4096; i++ {
			s := ShardOf(kv.HashKey([]byte(fmt.Sprintf("key-%d", i))), shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf out of range: %d (shards %d)", s, shards)
			}
			counts[s]++
		}
		// Sequential short keys must spread: no shard may be starved
		// below half its fair share.
		for s, n := range counts {
			if n < 4096/shards/2 {
				t.Errorf("shards=%d: shard %d got %d of 4096 keys", shards, s, n)
			}
		}
	}
}

func TestShardForMatchesShardOf(t *testing.T) {
	for i := 0; i < 256; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if ShardFor(key, 8) != ShardOf(kv.HashKey(key), 8) {
			t.Fatalf("ShardFor diverged from ShardOf for %q", key)
		}
	}
}

func TestPGOfSpreadAndDecorrelation(t *testing.T) {
	const pgs, n = 8, 4096
	counts := make([]int, pgs)
	same := 0
	for i := 0; i < n; i++ {
		h := kv.HashKey([]byte(fmt.Sprintf("key-%d", i)))
		pg := PGOf(h, pgs)
		if pg < 0 || pg >= pgs {
			t.Fatalf("PGOf out of range: %d", pg)
		}
		counts[pg]++
		if pg == ShardOf(h, pgs) {
			same++
		}
	}
	for pg, c := range counts {
		if c < n/pgs/2 {
			t.Errorf("PG %d starved: %d of %d keys", pg, c, n)
		}
	}
	// With PGs == Shards an unsalted PGOf would agree with ShardOf on
	// every key; the salt must push agreement down to chance (~1/pgs).
	if same > n/pgs*2 {
		t.Errorf("PGOf correlates with ShardOf: %d/%d keys agree", same, n)
	}
}

func TestSingleInstanceMapOwnsEverything(t *testing.T) {
	m := SingleInstance("a", "127.0.0.1:1", 16)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", m.Epoch)
	}
	for i := 0; i < 512; i++ {
		h := kv.HashKey([]byte(fmt.Sprintf("key-%d", i)))
		if !m.Owns("a", h) {
			t.Fatalf("single-instance map does not own key-%d", i)
		}
	}
	in, pg, ok := m.InstanceForKey([]byte("k"))
	if !ok || in.Name != "a" || pg < 0 || pg >= 16 {
		t.Fatalf("InstanceForKey = %+v pg=%d ok=%v", in, pg, ok)
	}
}

func TestMapMutatorsBumpEpochAndDeepCopy(t *testing.T) {
	m := SingleInstance("a", "addr-a", 4)
	m2 := m.WithInstance("b", "addr-b")
	if m2.Epoch != 2 || len(m2.Instances) != 2 {
		t.Fatalf("WithInstance: epoch=%d instances=%d", m2.Epoch, len(m2.Instances))
	}
	if len(m2.OwnedPGs("b")) != 0 {
		t.Fatal("joining instance must own nothing")
	}
	m3 := m2.WithAssign(2, "b")
	if m3.Epoch != 3 || m3.Assign[2] != "b" {
		t.Fatalf("WithAssign: epoch=%d assign=%v", m3.Epoch, m3.Assign)
	}
	if m2.Assign[2] != "a" || m.Epoch != 1 {
		t.Fatal("mutators aliased the parent map")
	}
	if got := m3.OwnedPGs("b"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("OwnedPGs(b) = %v", got)
	}
	if err := m3.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapEncodeDecodeRoundTrip(t *testing.T) {
	m := SingleInstance("a", "addr-a", 8).WithInstance("b", "addr-b").WithAssign(5, "b")
	got, err := DecodeMap(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.PGs != m.PGs {
		t.Fatalf("round trip lost header: %+v", got)
	}
	for pg := range m.Assign {
		if got.Assign[pg] != m.Assign[pg] {
			t.Fatalf("assign[%d] = %q, want %q", pg, got.Assign[pg], m.Assign[pg])
		}
	}
	if _, err := DecodeMap([]byte(`{"epoch":1,"pgs":2,"assign":["x","x"],"instances":[]}`)); err == nil {
		t.Fatal("DecodeMap accepted map with unknown assignee")
	}
	if _, err := DecodeMap([]byte(`not json`)); err == nil {
		t.Fatal("DecodeMap accepted garbage")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []*Map{
		nil,
		{Epoch: 0, PGs: 1, Assign: []string{"a"}, Instances: []Instance{{Name: "a"}}},
		{Epoch: 1, PGs: 2, Assign: []string{"a"}, Instances: []Instance{{Name: "a"}}},
		{Epoch: 1, PGs: 1, Assign: []string{"a"}, Instances: []Instance{{Name: "a"}, {Name: "a"}}},
		{Epoch: 1, PGs: 1, Assign: []string{"b"}, Instances: []Instance{{Name: "a"}}},
		{Epoch: 1, PGs: 1, Assign: []string{""}, Instances: []Instance{{Name: ""}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid map", i)
		}
	}
}

func TestRouterEpochGuard(t *testing.T) {
	var r Router
	if r.Current() != nil {
		t.Fatal("cold router not nil")
	}
	m1 := SingleInstance("a", "addr", 4)
	if !r.Install(m1) {
		t.Fatal("install into cold cache refused")
	}
	// Re-offering the same epoch (or older) must be refused.
	if r.Install(SingleInstance("a", "other", 4)) {
		t.Fatal("stale install accepted")
	}
	// A wrong-epoch at the cache's own epoch keeps the map: that is the
	// blocked-cutover window, not staleness.
	if r.Observe(m1.Epoch) || r.Current() == nil {
		t.Fatal("same-epoch observe dropped the map")
	}
	// A strictly newer epoch proves staleness and drops the cache.
	if !r.Observe(m1.Epoch+1) || r.Current() != nil {
		t.Fatal("newer-epoch observe kept the map")
	}
	m2 := m1.WithInstance("b", "addr-b")
	if !r.Install(m2) {
		t.Fatal("install of newer map refused")
	}
	r.Invalidate()
	if r.Current() != nil {
		t.Fatal("Invalidate kept the map")
	}
	st := r.Stats()
	if st.Installs != 2 || st.Rejected != 1 || st.Invalidations != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
