package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// WrongEpochError is the routed-op rejection a server returns when a key
// falls outside its owned placement groups: the op was not applied, and
// Epoch is the server's current map epoch. A client receiving it must
// treat its cached map as suspect — refetch and retry — never argue.
type WrongEpochError struct {
	Epoch uint64
}

func (e *WrongEpochError) Error() string {
	return fmt.Sprintf("cluster: wrong epoch (server at epoch %d)", e.Epoch)
}

// Router is the client-side epoch-guarded map cache. Like the hint cache
// it is advisory-never-authoritative: the cached map may be arbitrarily
// stale, correctness comes from servers rejecting misrouted ops with
// WrongEpochError and the client refetching. Install only ever moves the
// epoch forward; Observe drops the cache when a server proves a newer
// epoch exists.
type Router struct {
	mu sync.RWMutex
	m  *Map

	// Counters (atomic; read via Stats) mirror the hint cache's style so
	// bench and obs can report cache behavior.
	installs      atomic.Uint64 // maps accepted by Install
	rejected      atomic.Uint64 // stale maps refused by Install
	invalidations atomic.Uint64 // cache drops triggered by Observe
}

// Current returns the cached map, or nil when the cache is cold or was
// invalidated.
func (r *Router) Current() *Map {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m
}

// Install offers a freshly fetched map. It is accepted only if the cache
// is empty or the offered epoch is strictly larger — concurrent fetches
// can finish out of order, and the cache must never move backwards.
func (r *Router) Install(m *Map) bool {
	if m == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m != nil && m.Epoch <= r.m.Epoch {
		r.rejected.Add(1)
		return false
	}
	r.m = m
	r.installs.Add(1)
	return true
}

// Observe records a WrongEpochError's epoch. If the server proved a
// strictly newer epoch than the cached map, the cache is dropped (the
// next routing decision must refetch) and Observe reports true. A
// rejection at the cache's own epoch keeps the map: the op was refused
// by the current owner (a migration's blocked cutover window), and the
// right response is backoff + retry against the same map.
func (r *Router) Observe(epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil || epoch <= r.m.Epoch {
		return false
	}
	r.m = nil
	r.invalidations.Add(1)
	return true
}

// Invalidate unconditionally drops the cached map.
func (r *Router) Invalidate() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m != nil {
		r.m = nil
		r.invalidations.Add(1)
	}
}

// RouterStats is a point-in-time counter snapshot.
type RouterStats struct {
	Installs      uint64
	Rejected      uint64
	Invalidations uint64
}

// Stats snapshots the router's counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		Installs:      r.installs.Load(),
		Rejected:      r.rejected.Load(),
		Invalidations: r.invalidations.Load(),
	}
}
