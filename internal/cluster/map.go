package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Instance names one server process in the cluster. Name is the stable
// identity ownership is expressed in; Addr is where its tcpkv listener
// currently lives.
type Instance struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Map is the epoch-versioned cluster map: an assignment of every
// placement group to one named instance. Maps are immutable once built —
// every change (join, migration cutover) produces a new Map with a
// strictly larger Epoch via the With* constructors, so "newer" is always
// decidable by comparing epochs and a map can be shared across
// goroutines without locks.
//
// Epoch rules:
//   - Epochs only grow. An instance (or client cache) replaces its map
//     only when offered a strictly larger epoch.
//   - Whoever mutates the map bumps the epoch exactly once per change
//     and installs the new map on the gaining party before the losing
//     party, so at every instant at least one instance acks ownership of
//     any PG under the newest epoch either side has seen.
//   - The map is advisory for clients, authoritative for servers: a
//     server rejects keys outside its owned PGs with StWrongEpoch and
//     its current epoch, and clients refetch rather than argue.
type Map struct {
	Epoch     uint64     `json:"epoch"`
	PGs       int        `json:"pgs"`
	Assign    []string   `json:"assign"` // PG index -> instance name
	Instances []Instance `json:"instances"`
}

// SingleInstance builds the epoch-1 map of a standalone clustered server:
// one instance owning every placement group.
func SingleInstance(name, addr string, pgs int) *Map {
	if pgs < 1 {
		pgs = 1
	}
	assign := make([]string, pgs)
	for i := range assign {
		assign[i] = name
	}
	return &Map{
		Epoch:     1,
		PGs:       pgs,
		Assign:    assign,
		Instances: []Instance{{Name: name, Addr: addr}},
	}
}

// Validate checks internal consistency: every PG assigned, every
// assignment naming a known instance, no duplicate names.
func (m *Map) Validate() error {
	if m == nil {
		return errors.New("cluster: nil map")
	}
	if m.Epoch == 0 {
		return errors.New("cluster: epoch must be >= 1")
	}
	if m.PGs < 1 || len(m.Assign) != m.PGs {
		return fmt.Errorf("cluster: %d PGs but %d assignments", m.PGs, len(m.Assign))
	}
	seen := make(map[string]bool, len(m.Instances))
	for _, in := range m.Instances {
		if in.Name == "" {
			return errors.New("cluster: instance with empty name")
		}
		if seen[in.Name] {
			return fmt.Errorf("cluster: duplicate instance %q", in.Name)
		}
		seen[in.Name] = true
	}
	for pg, name := range m.Assign {
		if !seen[name] {
			return fmt.Errorf("cluster: PG %d assigned to unknown instance %q", pg, name)
		}
	}
	return nil
}

// AddrOf returns the address of the named instance.
func (m *Map) AddrOf(name string) (string, bool) {
	for _, in := range m.Instances {
		if in.Name == name {
			return in.Addr, true
		}
	}
	return "", false
}

// InstanceForPG returns the instance owning placement group pg.
func (m *Map) InstanceForPG(pg int) (Instance, bool) {
	if pg < 0 || pg >= len(m.Assign) {
		return Instance{}, false
	}
	name := m.Assign[pg]
	for _, in := range m.Instances {
		if in.Name == name {
			return in, true
		}
	}
	return Instance{}, false
}

// InstanceForKey routes a key: its PG, and the instance owning that PG.
func (m *Map) InstanceForKey(key []byte) (Instance, int, bool) {
	pg := PGForKey(key, m.PGs)
	in, ok := m.InstanceForPG(pg)
	return in, pg, ok
}

// Owns reports whether the named instance owns the PG of the given key
// hash under this map.
func (m *Map) Owns(name string, hash uint64) bool {
	pg := PGOf(hash, m.PGs)
	return pg < len(m.Assign) && m.Assign[pg] == name
}

// OwnedPGs lists the placement groups assigned to name.
func (m *Map) OwnedPGs(name string) []int {
	var pgs []int
	for pg, owner := range m.Assign {
		if owner == name {
			pgs = append(pgs, pg)
		}
	}
	return pgs
}

// clone deep-copies the map so With* constructors never alias a shared
// instance's slices.
func (m *Map) clone() *Map {
	n := &Map{Epoch: m.Epoch, PGs: m.PGs}
	n.Assign = append([]string(nil), m.Assign...)
	n.Instances = append([]Instance(nil), m.Instances...)
	return n
}

// WithInstance returns a new map at epoch+1 with the named instance
// added (or its address updated). Assignments are unchanged: a joining
// instance owns nothing until a migration moves PGs onto it.
func (m *Map) WithInstance(name, addr string) *Map {
	n := m.clone()
	n.Epoch++
	for i := range n.Instances {
		if n.Instances[i].Name == name {
			n.Instances[i].Addr = addr
			return n
		}
	}
	n.Instances = append(n.Instances, Instance{Name: name, Addr: addr})
	return n
}

// WithAssign returns a new map at epoch+1 with pg reassigned to target.
// This is the migration cutover step.
func (m *Map) WithAssign(pg int, target string) *Map {
	n := m.clone()
	n.Epoch++
	if pg >= 0 && pg < len(n.Assign) {
		n.Assign[pg] = target
	}
	return n
}

// Encode serializes the map for the TClusterMap wire payload.
func (m *Map) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// Map has no unmarshalable fields; this cannot happen.
		panic("cluster: encode: " + err.Error())
	}
	return b
}

// DecodeMap parses and validates a wire payload produced by Encode.
func DecodeMap(b []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: decode map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
