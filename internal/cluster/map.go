package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Instance names one server process in the cluster. Name is the stable
// identity ownership is expressed in; Addr is where its tcpkv listener
// currently lives.
type Instance struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Map is the epoch-versioned cluster map: an assignment of every
// placement group to one named instance. Maps are immutable once built —
// every change (join, migration cutover) produces a new Map with a
// strictly larger Epoch via the With* constructors, so "newer" is always
// decidable by comparing epochs and a map can be shared across
// goroutines without locks.
//
// Epoch rules:
//   - Epochs only grow. An instance (or client cache) replaces its map
//     only when offered a strictly larger epoch.
//   - Whoever mutates the map bumps the epoch exactly once per change
//     and installs the new map on the gaining party before the losing
//     party, so at every instant at least one instance acks ownership of
//     any PG under the newest epoch either side has seen.
//   - The map is advisory for clients, authoritative for servers: a
//     server rejects keys outside its owned PGs with StWrongEpoch and
//     its current epoch, and clients refetch rather than argue.
type Map struct {
	Epoch     uint64     `json:"epoch"`
	PGs       int        `json:"pgs"`
	Assign    []string   `json:"assign"` // PG index -> instance name
	Instances []Instance `json:"instances"`

	// Backups is the ordered replica set per PG beyond the primary in
	// Assign: Backups[pg] lists the instances mirroring that group's
	// writes, in promotion order (a failover promotes the first live
	// backup). Nil or empty means the PG is unreplicated — the zero value
	// keeps pre-replication maps byte-identical on the wire.
	Backups [][]string `json:"backups,omitempty"`

	// ReplicationFactor is the copies-per-PG target (primary included)
	// the cluster converges to as instances join; 0 or 1 means
	// replication is off.
	ReplicationFactor int `json:"rf,omitempty"`
}

// SingleInstance builds the epoch-1 map of a standalone clustered server:
// one instance owning every placement group.
func SingleInstance(name, addr string, pgs int) *Map {
	if pgs < 1 {
		pgs = 1
	}
	assign := make([]string, pgs)
	for i := range assign {
		assign[i] = name
	}
	return &Map{
		Epoch:     1,
		PGs:       pgs,
		Assign:    assign,
		Instances: []Instance{{Name: name, Addr: addr}},
	}
}

// Validate checks internal consistency: every PG assigned, every
// assignment naming a known instance, no duplicate names.
func (m *Map) Validate() error {
	if m == nil {
		return errors.New("cluster: nil map")
	}
	if m.Epoch == 0 {
		return errors.New("cluster: epoch must be >= 1")
	}
	if m.PGs < 1 || len(m.Assign) != m.PGs {
		return fmt.Errorf("cluster: %d PGs but %d assignments", m.PGs, len(m.Assign))
	}
	seen := make(map[string]bool, len(m.Instances))
	for _, in := range m.Instances {
		if in.Name == "" {
			return errors.New("cluster: instance with empty name")
		}
		if seen[in.Name] {
			return fmt.Errorf("cluster: duplicate instance %q", in.Name)
		}
		seen[in.Name] = true
	}
	for pg, name := range m.Assign {
		if !seen[name] {
			return fmt.Errorf("cluster: PG %d assigned to unknown instance %q", pg, name)
		}
	}
	if len(m.Backups) > 0 {
		if len(m.Backups) != m.PGs {
			return fmt.Errorf("cluster: %d PGs but %d backup sets", m.PGs, len(m.Backups))
		}
		for pg, bs := range m.Backups {
			dup := make(map[string]bool, len(bs))
			for _, name := range bs {
				if !seen[name] {
					return fmt.Errorf("cluster: PG %d backup names unknown instance %q", pg, name)
				}
				if name == m.Assign[pg] {
					return fmt.Errorf("cluster: PG %d lists its primary %q as a backup", pg, name)
				}
				if dup[name] {
					return fmt.Errorf("cluster: PG %d lists backup %q twice", pg, name)
				}
				dup[name] = true
			}
		}
	}
	return nil
}

// AddrOf returns the address of the named instance.
func (m *Map) AddrOf(name string) (string, bool) {
	for _, in := range m.Instances {
		if in.Name == name {
			return in.Addr, true
		}
	}
	return "", false
}

// InstanceForPG returns the instance owning placement group pg.
func (m *Map) InstanceForPG(pg int) (Instance, bool) {
	if pg < 0 || pg >= len(m.Assign) {
		return Instance{}, false
	}
	name := m.Assign[pg]
	for _, in := range m.Instances {
		if in.Name == name {
			return in, true
		}
	}
	return Instance{}, false
}

// InstanceForKey routes a key: its PG, and the instance owning that PG.
func (m *Map) InstanceForKey(key []byte) (Instance, int, bool) {
	pg := PGForKey(key, m.PGs)
	in, ok := m.InstanceForPG(pg)
	return in, pg, ok
}

// Owns reports whether the named instance owns the PG of the given key
// hash under this map.
func (m *Map) Owns(name string, hash uint64) bool {
	pg := PGOf(hash, m.PGs)
	return pg < len(m.Assign) && m.Assign[pg] == name
}

// OwnedPGs lists the placement groups assigned to name.
func (m *Map) OwnedPGs(name string) []int {
	var pgs []int
	for pg, owner := range m.Assign {
		if owner == name {
			pgs = append(pgs, pg)
		}
	}
	return pgs
}

// BackupsFor returns the ordered backups of placement group pg (nil when
// the PG is unreplicated).
func (m *Map) BackupsFor(pg int) []string {
	if pg < 0 || pg >= len(m.Backups) {
		return nil
	}
	return m.Backups[pg]
}

// Replicated reports whether any PG carries at least one backup.
func (m *Map) Replicated() bool {
	for _, bs := range m.Backups {
		if len(bs) > 0 {
			return true
		}
	}
	return false
}

// clone deep-copies the map so With* constructors never alias a shared
// instance's slices.
func (m *Map) clone() *Map {
	n := &Map{Epoch: m.Epoch, PGs: m.PGs, ReplicationFactor: m.ReplicationFactor}
	n.Assign = append([]string(nil), m.Assign...)
	n.Instances = append([]Instance(nil), m.Instances...)
	if m.Backups != nil {
		n.Backups = make([][]string, len(m.Backups))
		for i, bs := range m.Backups {
			n.Backups[i] = append([]string(nil), bs...)
		}
	}
	return n
}

// ensureBackups grows the backup table to PGs entries (on a clone; never
// on a shared map).
func (m *Map) ensureBackups() {
	for len(m.Backups) < m.PGs {
		m.Backups = append(m.Backups, nil)
	}
}

// WithInstance returns a new map at epoch+1 with the named instance
// added (or its address updated). Assignments are unchanged: a joining
// instance owns nothing until a migration moves PGs onto it.
func (m *Map) WithInstance(name, addr string) *Map {
	n := m.clone()
	n.Epoch++
	for i := range n.Instances {
		if n.Instances[i].Name == name {
			n.Instances[i].Addr = addr
			return n
		}
	}
	n.Instances = append(n.Instances, Instance{Name: name, Addr: addr})
	return n
}

// WithAssign returns a new map at epoch+1 with pg reassigned to target.
// This is the migration cutover step.
func (m *Map) WithAssign(pg int, target string) *Map {
	n := m.clone()
	n.Epoch++
	if pg >= 0 && pg < len(n.Assign) {
		n.Assign[pg] = target
	}
	return n
}

// WithBackup returns a new map at epoch+1 with name appended to pg's
// ordered backup set (no-op clone if it is already the primary or a
// backup). This is the replication attach step: the epoch bump makes the
// primary's mirror obligation visible cluster-wide.
func (m *Map) WithBackup(pg int, name string) *Map {
	n := m.clone()
	n.Epoch++
	if pg < 0 || pg >= n.PGs || n.Assign[pg] == name {
		return n
	}
	n.ensureBackups()
	for _, b := range n.Backups[pg] {
		if b == name {
			return n
		}
	}
	n.Backups[pg] = append(n.Backups[pg], name)
	return n
}

// WithoutBackup returns a new map at epoch+1 with name removed from pg's
// backup set. This is the demotion step a primary takes when a backup
// stops acking mirror appends: shrinking the replica set is the only way
// to keep acking writes without lying about the quorum.
func (m *Map) WithoutBackup(pg int, name string) *Map {
	n := m.clone()
	n.Epoch++
	if pg < 0 || pg >= len(n.Backups) {
		return n
	}
	bs := n.Backups[pg][:0]
	for _, b := range n.Backups[pg] {
		if b != name {
			bs = append(bs, b)
		}
	}
	n.Backups[pg] = bs
	return n
}

// WithPromotion returns a new map at epoch+1 with pg's primary replaced
// by the named backup: to becomes the owner, leaves the backup set, and
// the dead ex-primary is dropped from it too (it rejoins, if ever, as a
// fresh backup). The epoch bump is the whole failover protocol from the
// clients' view — their next misrouted op draws StWrongEpoch and the
// refetch lands on the promoted instance.
func (m *Map) WithPromotion(pg int, to string) *Map {
	old := ""
	if pg >= 0 && pg < len(m.Assign) {
		old = m.Assign[pg]
	}
	n := m.WithoutBackup(pg, to)
	if pg < 0 || pg >= len(n.Assign) {
		return n
	}
	n.Assign[pg] = to
	if pg < len(n.Backups) && old != "" {
		bs := n.Backups[pg][:0]
		for _, b := range n.Backups[pg] {
			if b != old {
				bs = append(bs, b)
			}
		}
		n.Backups[pg] = bs
	}
	return n
}

// Encode serializes the map for the TClusterMap wire payload.
func (m *Map) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// Map has no unmarshalable fields; this cannot happen.
		panic("cluster: encode: " + err.Error())
	}
	return b
}

// DecodeMap parses and validates a wire payload produced by Encode.
func DecodeMap(b []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: decode map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
